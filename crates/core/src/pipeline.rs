//! The end-to-end QuCLEAR pipeline: Clifford Extraction followed by local
//! clean-up and Clifford Absorption helpers.

use quclear_circuit::{optimize_with, Circuit, OptimizeOptions};
use quclear_pauli::{PauliRotation, SignedPauli};
use quclear_tableau::CliffordTableau;

use crate::absorb::{AbsorptionError, AbsorptionPlan, ObservableAbsorption, ProbabilityAbsorber};
use crate::extract::{extract_clifford, ExtractionConfig};

/// Configuration of the full QuCLEAR pipeline.
///
/// The flags correspond to the individual features whose contributions the
/// paper breaks down in Figure 10: recursive tree synthesis, commuting-block
/// reordering, and the local ("Qiskit") peephole pass.
#[derive(Clone, Copy, Debug)]
pub struct QuClearConfig {
    /// Clifford-Extraction options (recursion, reordering, lookahead).
    pub extraction: ExtractionConfig,
    /// Apply the peephole optimizer to the optimized circuit afterwards
    /// (the paper's "with Qiskit optimization" configuration, Figure 9).
    pub apply_peephole: bool,
    /// Options for the peephole pass.
    pub peephole: OptimizeOptions,
}

impl Default for QuClearConfig {
    fn default() -> Self {
        QuClearConfig {
            extraction: ExtractionConfig::default(),
            apply_peephole: true,
            peephole: OptimizeOptions::default(),
        }
    }
}

impl QuClearConfig {
    /// The configuration used for the paper's headline numbers: everything
    /// enabled.
    #[must_use]
    pub fn full() -> Self {
        QuClearConfig::default()
    }

    /// QuCLEAR without the trailing peephole pass (Figure 9's "without Qiskit
    /// optimization" variant).
    #[must_use]
    pub fn without_peephole() -> Self {
        QuClearConfig {
            apply_peephole: false,
            ..QuClearConfig::default()
        }
    }
}

/// The output of the QuCLEAR pipeline.
#[derive(Clone, Debug)]
pub struct QuClearResult {
    /// The optimized circuit `U'` to execute on the quantum device.
    pub optimized: Circuit,
    /// The extracted Clifford `U_CL` (never executed; absorbed classically).
    pub extracted: Circuit,
    /// The Heisenberg map `P ↦ U_CL† P U_CL`.
    pub heisenberg: CliffordTableau,
}

impl QuClearResult {
    /// The circuit `optimized` followed by `extracted`; equivalent to the
    /// input program.
    #[must_use]
    pub fn full_circuit(&self) -> Circuit {
        let mut full = self.optimized.clone();
        full.append(&self.extracted);
        full
    }

    /// CNOT count of the optimized circuit (the paper's headline metric).
    #[must_use]
    pub fn cnot_count(&self) -> usize {
        self.optimized.cnot_count()
    }

    /// Entangling depth of the optimized circuit.
    #[must_use]
    pub fn entangling_depth(&self) -> usize {
        self.optimized.entangling_depth()
    }

    /// CA-Pre/CA-Post bookkeeping for a set of Pauli observables.
    #[must_use]
    pub fn absorb_observables(&self, observables: &[SignedPauli]) -> ObservableAbsorption {
        ObservableAbsorption::new(&self.heisenberg, observables)
    }

    /// The batch-first absorption recipe for this compilation: built once,
    /// it rewrites whole observable frames word-parallel (CA-Pre) instead of
    /// conjugating one string at a time.
    #[must_use]
    pub fn absorption_plan(&self) -> AbsorptionPlan {
        AbsorptionPlan::from_extraction(self.heisenberg.clone(), &self.extracted)
    }

    /// CA modules for probability-distribution measurements.
    ///
    /// # Errors
    ///
    /// Returns an error if the extracted Clifford is not of the
    /// basis-layer + CNOT-network form (Proposition 1), in which case
    /// observable absorption should be used instead.
    pub fn probability_absorber(&self) -> Result<ProbabilityAbsorber, AbsorptionError> {
        ProbabilityAbsorber::from_extracted(&self.extracted)
    }
}

/// Runs the QuCLEAR pipeline on a Pauli-rotation program.
///
/// # Examples
///
/// ```
/// use quclear_core::{compile, QuClearConfig};
/// use quclear_pauli::PauliRotation;
///
/// let program = vec![
///     PauliRotation::parse("ZZZZ", 0.3)?,
///     PauliRotation::parse("YYXX", 0.7)?,
/// ];
/// let result = compile(&program, &QuClearConfig::default());
/// assert!(result.cnot_count() <= 4);
/// assert!(result.extracted.is_clifford());
/// # Ok::<(), quclear_pauli::ParsePauliError>(())
/// ```
#[must_use]
pub fn compile(rotations: &[PauliRotation], config: &QuClearConfig) -> QuClearResult {
    let extraction = extract_clifford(rotations, &config.extraction);
    let optimized = if config.apply_peephole {
        optimize_with(&extraction.optimized, &config.peephole)
    } else {
        extraction.optimized
    };
    QuClearResult {
        optimized,
        extracted: extraction.extracted,
        heisenberg: extraction.heisenberg,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rot(s: &str, a: f64) -> PauliRotation {
        PauliRotation::parse(s, a).unwrap()
    }

    #[test]
    fn pipeline_reduces_the_motivating_example() {
        let program = vec![rot("ZZZZ", 0.3), rot("YYXX", 0.7)];
        let result = compile(&program, &QuClearConfig::default());
        assert!(result.cnot_count() <= 4);
        assert!(result.entangling_depth() <= 4);
    }

    #[test]
    fn peephole_never_increases_cnots() {
        let program = vec![
            rot("ZZII", 0.1),
            rot("IZZI", 0.2),
            rot("XXXX", 0.3),
            rot("IIZZ", 0.4),
        ];
        let with = compile(&program, &QuClearConfig::full());
        let without = compile(&program, &QuClearConfig::without_peephole());
        assert!(with.cnot_count() <= without.cnot_count());
        assert_eq!(with.extracted.gates(), without.extracted.gates());
    }

    #[test]
    fn qaoa_like_program_is_probability_absorbable() {
        // One QAOA layer on a triangle: ZZ problem terms + X mixers.
        let program = vec![
            rot("ZZI", 0.4),
            rot("IZZ", 0.4),
            rot("ZIZ", 0.4),
            rot("XII", 0.8),
            rot("IXI", 0.8),
            rot("IIX", 0.8),
        ];
        let result = compile(&program, &QuClearConfig::default());
        let absorber = result.probability_absorber();
        assert!(absorber.is_ok(), "Proposition 1 should apply: {absorber:?}");
    }

    #[test]
    fn observable_absorption_roundtrip_shape() {
        let program = vec![rot("ZZ", 0.3), rot("XX", 0.5)];
        let result = compile(&program, &QuClearConfig::default());
        let obs: Vec<quclear_pauli::SignedPauli> =
            vec!["ZI".parse().unwrap(), "XX".parse().unwrap()];
        let absorption = result.absorb_observables(&obs);
        assert_eq!(absorption.len(), 2);
        assert_eq!(absorption.transformed()[0].num_qubits(), 2);
    }

    #[test]
    fn empty_program_compiles_to_empty_circuits() {
        let result = compile(&[], &QuClearConfig::default());
        assert!(result.optimized.is_empty());
        assert!(result.extracted.is_empty());
    }
}

//! Measurement grouping of Pauli observables.
//!
//! After Clifford Absorption a VQE workload still has to measure one Pauli
//! observable per term. Section VI-A of the paper notes that because Clifford
//! conjugation preserves commutation relations, the transformed observables
//! can be grouped for simultaneous measurement exactly like the originals
//! (citing the O(n³) measurement-reduction technique). This module provides
//! the standard *qubit-wise commuting* (QWC) grouping: observables in one
//! group share a single measurement-basis circuit, so the number of circuit
//! executions drops from one per observable to one per group.
//!
//! It also provides the *general*-commuting composition step: for each group
//! from [`group_commuting_frame`], [`diagonalize_commuting_frame`] synthesizes
//! (symplectic Gram–Schmidt style) a Clifford `D` that conjugates every member
//! to a signed Z-diagonal Pauli. Appending `D` to the circuit and reading the
//! packed shot planes through the composed affine map — rows are Z-supports,
//! offsets are tracked signs — estimates **all** members of a group from one
//! shot batch via the CA-Post bit-plane kernels ([`Gf2Matrix::mul_planes`],
//! [`ShotBatch::parity_expectations`]). [`MeasurementPlan`] bundles the full
//! pipeline for an absorbed observable batch.

use crate::absorb::AbsorbedObservables;
use crate::gf2::Gf2Matrix;
use crate::shots::ShotBatch;
use quclear_circuit::{Circuit, Gate};
use quclear_pauli::{BitVec, PauliFrame, PauliOp, PauliString, SignedPauli};
use quclear_tableau::conjugate_all_by_gate;

/// A group of qubit-wise commuting observables together with the shared
/// measurement basis.
#[derive(Clone, Debug)]
pub struct MeasurementGroup {
    /// Indices (into the original observable list) of the group's members.
    pub members: Vec<usize>,
    /// Per-qubit measurement basis: the non-identity operator measured on
    /// each qubit (identity where no member touches the qubit).
    pub basis: PauliString,
}

impl MeasurementGroup {
    /// The single-qubit rotation circuit shared by every member of the group.
    #[must_use]
    pub fn measurement_circuit(&self) -> Circuit {
        crate::extract::basis_change_circuit(self.basis.num_qubits(), &self.basis)
    }
}

/// Returns `true` if two Pauli strings commute *qubit-wise*: on every qubit
/// their operators are equal or at least one is the identity.
#[must_use]
pub fn qubit_wise_commute(a: &PauliString, b: &PauliString) -> bool {
    a.ops().all(|(q, op_a)| {
        let op_b = b.op(q);
        op_a.is_identity() || op_b.is_identity() || op_a == op_b
    })
}

/// Greedily partitions observables into qubit-wise commuting groups
/// (first-fit on the shared basis). Observables within one group can be
/// estimated from the same set of measurement shots.
///
/// # Examples
///
/// ```
/// use quclear_core::group_qubitwise_commuting;
/// use quclear_pauli::SignedPauli;
///
/// let observables: Vec<SignedPauli> =
///     vec!["ZZI".parse()?, "ZIZ".parse()?, "XXI".parse()?];
/// let groups = group_qubitwise_commuting(&observables);
/// assert_eq!(groups.len(), 2); // {ZZI, ZIZ} and {XXI}
/// # Ok::<(), quclear_pauli::ParsePauliError>(())
/// ```
#[must_use]
pub fn group_qubitwise_commuting(observables: &[SignedPauli]) -> Vec<MeasurementGroup> {
    let mut groups: Vec<MeasurementGroup> = Vec::new();
    for (idx, observable) in observables.iter().enumerate() {
        let pauli = observable.pauli();
        let slot = groups.iter_mut().find(|g| compatible(&g.basis, pauli));
        match slot {
            Some(group) => {
                merge_into_basis(&mut group.basis, pauli);
                group.members.push(idx);
            }
            None => groups.push(MeasurementGroup {
                members: vec![idx],
                basis: pauli.clone(),
            }),
        }
    }
    groups
}

/// Greedily partitions Pauli strings into *generally* commuting sets:
/// first-fit into the first group whose every member commutes with the
/// candidate. The pairwise test is the bitwise symplectic product
/// (`x_a·z_b ⊕ z_a·x_b` as two AND-popcount parities over the packed
/// symplectic words), so each comparison costs `O(n/64)` word operations.
///
/// General commutation is strictly coarser than qubit-wise commutation
/// (`ZZ` and `XX` commute globally but not qubit-wise), so these groups are
/// never more numerous than [`group_qubitwise_commuting`]'s — at the price
/// of needing an entangling basis-change circuit per group to measure.
///
/// # Examples
///
/// ```
/// use quclear_core::group_commuting;
/// use quclear_pauli::PauliString;
///
/// let paulis: Vec<PauliString> = vec!["ZZ".parse()?, "XX".parse()?, "XI".parse()?];
/// // ZZ and XX commute; XI anticommutes with ZZ.
/// assert_eq!(group_commuting(&paulis), vec![vec![0, 1], vec![2]]);
/// # Ok::<(), quclear_pauli::ParsePauliError>(())
/// ```
#[must_use]
pub fn group_commuting(paulis: &[PauliString]) -> Vec<Vec<usize>> {
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for (idx, pauli) in paulis.iter().enumerate() {
        let slot = groups
            .iter_mut()
            .find(|g| g.iter().all(|&m| paulis[m].commutes_with(pauli)));
        match slot {
            Some(group) => group.push(idx),
            None => groups.push(vec![idx]),
        }
    }
    groups
}

/// [`group_commuting`] over the rows of a [`PauliFrame`] (e.g. a CA-Pre
/// rewritten observable batch); signs are irrelevant to commutation and are
/// ignored.
#[must_use]
pub fn group_commuting_frame(frame: &PauliFrame) -> Vec<Vec<usize>> {
    let paulis: Vec<PauliString> = (0..frame.num_rows()).map(|i| frame.row_pauli(i)).collect();
    group_commuting(&paulis)
}

/// A Clifford circuit `D` that conjugates every row of a mutually commuting
/// [`PauliFrame`] to a signed Z-diagonal Pauli, together with the composed
/// classical readout map.
///
/// Appending [`Self::circuit`] to a state-preparation circuit and measuring
/// in the computational basis turns every member `P_i` of the group into a
/// parity observable: `⟨P_i⟩ = s_i · E[(-1)^{⟨m_i, shot⟩}]` where `m_i` is
/// the Z-support of `D·P_i·D†` ([`Self::z_support`]) and `s_i = ±1` its
/// tracked sign ([`Self::sign`]). The signs compose the input frame's signs
/// (e.g. CA-Pre absorption signs) with the conjugation phases picked up
/// during diagonalization, so [`Self::expectations`] reports expectations of
/// the *original* observables directly.
#[derive(Clone, Debug)]
pub struct GroupDiagonalizer {
    circuit: Circuit,
    diagonal: PauliFrame,
    z_supports: Vec<BitVec>,
    parity_blocks: Vec<Gf2Matrix>,
}

/// Synthesizes a diagonalizing Clifford for a frame of mutually commuting
/// Pauli rows via a symplectic Gram–Schmidt pivot sweep.
///
/// For each row with X-support, the first X-support qubit becomes the pivot:
/// a CX fan-out clears the row's remaining X columns onto the pivot, an `S`
/// removes a leftover Y at the pivot, CZs from the pivot clear the remaining
/// Z columns, and a final `H` maps the lone `±X_pivot` to `±Z_pivot`.
/// Commutation guarantees no other row carries Z at the pivot when the `H`
/// lands, so pivot qubits retire monotonically and finished rows are never
/// disturbed — `O(rows · qubits)` gates total.
///
/// # Panics
///
/// Panics if any two rows anticommute (no common eigenbasis exists), or —
/// defensively — if the sweep fails to reach a fully Z-diagonal frame.
#[must_use]
pub fn diagonalize_commuting_frame(frame: &PauliFrame) -> GroupDiagonalizer {
    let n = frame.num_qubits();
    let rows = frame.num_rows();
    let paulis: Vec<PauliString> = (0..rows).map(|i| frame.row_pauli(i)).collect();
    for i in 0..rows {
        for j in (i + 1)..rows {
            assert!(
                paulis[i].commutes_with(&paulis[j]),
                "diagonalize_commuting_frame: rows {i} and {j} anticommute"
            );
        }
    }
    let mut work = frame.clone();
    let mut circuit = Circuit::new(n);
    let emit = |work: &mut PauliFrame, circuit: &mut Circuit, gate: Gate| {
        conjugate_all_by_gate(work, &gate);
        circuit.push(gate);
    };
    for i in 0..rows {
        let x_support = work.row_x_support(i);
        let Some(pivot) = (0..n).find(|&q| x_support.get(q)) else {
            continue; // already pure-Z: nothing to do for this row
        };
        for q in (pivot + 1)..n {
            if x_support.get(q) {
                emit(
                    &mut work,
                    &mut circuit,
                    Gate::Cx {
                        control: pivot,
                        target: q,
                    },
                );
            }
        }
        // The CX sweep may have folded Z bits back onto the pivot
        // (conj_cx updates Z_control ^= Z_target), so fix the Y after it.
        if work.z_plane(pivot).get(i) {
            emit(&mut work, &mut circuit, Gate::S(pivot));
        }
        for q in 0..n {
            if q != pivot && work.z_plane(q).get(i) {
                emit(&mut work, &mut circuit, Gate::Cz { a: pivot, b: q });
            }
        }
        emit(&mut work, &mut circuit, Gate::H(pivot));
    }
    for q in 0..n {
        assert_eq!(
            work.x_plane(q).count_ones(),
            0,
            "diagonalization sweep left X-support on qubit {q}"
        );
    }
    let z_supports: Vec<BitVec> = (0..rows).map(|i| work.row_z_support(i)).collect();
    // The affine readout map has one row per member; members can outnumber
    // qubits (dependent Paulis), so pack the rows into square n×n blocks for
    // the mul_planes kernel.
    let parity_blocks = z_supports
        .chunks(n.max(1))
        .map(|chunk| {
            let mut block = chunk.to_vec();
            block.resize(n, BitVec::zeros(n));
            Gf2Matrix::from_bit_rows(block)
        })
        .collect();
    GroupDiagonalizer {
        circuit,
        diagonal: work,
        z_supports,
        parity_blocks,
    }
}

impl GroupDiagonalizer {
    /// Register width in qubits.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.diagonal.num_qubits()
    }

    /// Number of diagonalized rows (group members).
    #[must_use]
    pub fn len(&self) -> usize {
        self.diagonal.num_rows()
    }

    /// `true` if the group has no members.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The diagonalizing Clifford circuit `D`; append it to the
    /// state-preparation circuit before sampling computational-basis shots.
    #[must_use]
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The fully Z-diagonal conjugated frame `D·P_i·D†` with composed signs.
    #[must_use]
    pub fn diagonal_frame(&self) -> &PauliFrame {
        &self.diagonal
    }

    /// Row `i` after conjugation, as a signed Pauli (guaranteed Z-diagonal).
    #[must_use]
    pub fn diagonal_pauli(&self, i: usize) -> SignedPauli {
        self.diagonal.get(i)
    }

    /// The qubit parity mask of diagonalized row `i` — the row of the
    /// composed affine readout map for member `i`.
    #[must_use]
    pub fn z_support(&self, i: usize) -> &BitVec {
        &self.z_supports[i]
    }

    /// All parity masks, in member order.
    #[must_use]
    pub fn z_supports(&self) -> &[BitVec] {
        &self.z_supports
    }

    /// The composed sign of member `i` as `±1.0` (input-frame sign times
    /// conjugation phase).
    #[must_use]
    pub fn sign(&self, i: usize) -> f64 {
        if self.diagonal.sign(i) {
            -1.0
        } else {
            1.0
        }
    }

    /// Estimates every member of the group from a single packed shot batch
    /// (shots sampled after appending [`Self::circuit`]), using the fused
    /// XOR-popcount plane kernel. Entry `i` estimates `⟨P_i⟩` of original
    /// member `i`, signs included.
    ///
    /// # Panics
    ///
    /// Panics if the batch register width differs from the group's.
    #[must_use]
    pub fn expectations(&self, shots: &ShotBatch) -> Vec<f64> {
        assert_eq!(
            shots.num_qubits(),
            self.num_qubits(),
            "shot batch register width must match the diagonalized group"
        );
        let raw = shots.parity_expectations(&self.z_supports);
        raw.into_iter()
            .enumerate()
            .map(|(i, e)| self.sign(i) * e)
            .collect()
    }

    /// Applies the composed affine map `shot ↦ A·shot ⊕ b` to every shot at
    /// once with the CA-Post bit-plane kernel ([`Gf2Matrix::mul_planes`]):
    /// plane `i`, bit `s` is the measured outcome bit of member `i` on shot
    /// `s` (0 ↦ eigenvalue `+1`). Averaging `(-1)^bit` over a plane equals
    /// the corresponding [`Self::expectations`] entry bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics if the batch register width differs from the group's.
    #[must_use]
    pub fn outcome_planes(&self, shots: &ShotBatch) -> Vec<BitVec> {
        assert_eq!(
            shots.num_qubits(),
            self.num_qubits(),
            "shot batch register width must match the diagonalized group"
        );
        let n = self.num_qubits();
        let mut planes: Vec<BitVec> = Vec::with_capacity(self.len());
        for (b, block) in self.parity_blocks.iter().enumerate() {
            let produced = block.mul_planes(shots.planes());
            let keep = (self.len() - b * n.max(1)).min(n.max(1));
            planes.extend(produced.into_iter().take(keep));
        }
        for (i, plane) in planes.iter_mut().enumerate() {
            if self.diagonal.sign(i) {
                plane.flip_all();
            }
        }
        planes
    }
}

/// One general-commuting group of a [`MeasurementPlan`]: the member indices
/// into the original observable list plus the group's diagonalizer.
#[derive(Clone, Debug)]
pub struct PlannedGroup {
    members: Vec<usize>,
    diagonalizer: GroupDiagonalizer,
}

impl PlannedGroup {
    /// Indices (into the plan's observable list) of the group's members.
    #[must_use]
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// The group's diagonalizing Clifford and composed readout map.
    #[must_use]
    pub fn diagonalizer(&self) -> &GroupDiagonalizer {
        &self.diagonalizer
    }
}

/// The end-to-end measurement-reduction plan for an observable batch:
/// general-commuting groups, one diagonalizing Clifford per group, and the
/// composed affine readout maps. One shot batch per *group* (instead of per
/// *observable*) estimates everything — the shot-budget divisor is
/// `observables / groups`.
///
/// # Examples
///
/// ```
/// use quclear_core::{diagonalize_commuting_frame, MeasurementPlan};
/// use quclear_pauli::{PauliFrame, SignedPauli};
///
/// let rows: Vec<SignedPauli> = vec!["ZZ".parse()?, "XX".parse()?, "-YY".parse()?];
/// let plan = MeasurementPlan::from_frame(&PauliFrame::from_signed(2, &rows));
/// assert_eq!(plan.num_groups(), 1); // ZZ, XX, YY mutually commute
/// assert_eq!(plan.shot_budget_divisor(), 3.0);
/// # Ok::<(), quclear_pauli::ParsePauliError>(())
/// ```
#[derive(Clone, Debug)]
pub struct MeasurementPlan {
    num_qubits: usize,
    num_observables: usize,
    groups: Vec<PlannedGroup>,
}

impl MeasurementPlan {
    /// Builds the plan for the rows of a [`PauliFrame`] (signs included):
    /// greedy general-commuting grouping via [`group_commuting_frame`], then
    /// one [`diagonalize_commuting_frame`] pass per group.
    #[must_use]
    pub fn from_frame(frame: &PauliFrame) -> Self {
        let groups = group_commuting_frame(frame)
            .into_iter()
            .map(|members| {
                let sub = frame.select_rows(&members);
                PlannedGroup {
                    diagonalizer: diagonalize_commuting_frame(&sub),
                    members,
                }
            })
            .collect();
        MeasurementPlan {
            num_qubits: frame.num_qubits(),
            num_observables: frame.num_rows(),
            groups,
        }
    }

    /// Builds the plan for a CA-Pre absorbed observable batch; the absorbed
    /// frame's signs flow into the diagonalizers, so estimates report
    /// expectations of the *original* (pre-absorption) observables.
    #[must_use]
    pub fn from_absorbed(absorbed: &AbsorbedObservables) -> Self {
        Self::from_frame(absorbed.frame())
    }

    /// Register width in qubits.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of observables covered by the plan.
    #[must_use]
    pub fn num_observables(&self) -> usize {
        self.num_observables
    }

    /// Number of general-commuting groups — the number of distinct shot
    /// batches needed.
    #[must_use]
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// The planned groups in estimation order.
    #[must_use]
    pub fn groups(&self) -> &[PlannedGroup] {
        &self.groups
    }

    /// How many times fewer shot batches the plan needs compared to
    /// per-observable estimation: `observables / groups` (`1.0` for an empty
    /// plan).
    #[must_use]
    pub fn shot_budget_divisor(&self) -> f64 {
        if self.groups.is_empty() {
            1.0
        } else {
            self.num_observables as f64 / self.groups.len() as f64
        }
    }

    /// Estimates every observable from one packed shot batch per group
    /// (`group_shots[g]` sampled after appending group `g`'s diagonalizer
    /// circuit), scattering per-group expectations back to original
    /// observable order.
    ///
    /// # Panics
    ///
    /// Panics if the batch count differs from [`Self::num_groups`] or any
    /// batch's register width differs from the plan's.
    #[must_use]
    pub fn estimate(&self, group_shots: &[ShotBatch]) -> Vec<f64> {
        assert_eq!(
            group_shots.len(),
            self.groups.len(),
            "need exactly one shot batch per commuting group"
        );
        let mut out = vec![0.0; self.num_observables];
        for (group, shots) in self.groups.iter().zip(group_shots) {
            let expectations = group.diagonalizer.expectations(shots);
            for (&member, value) in group.members.iter().zip(expectations) {
                out[member] = value;
            }
        }
        out
    }
}

/// A Pauli is compatible with a group basis if it is qubit-wise consistent
/// with it (equal or identity on every qubit).
fn compatible(basis: &PauliString, pauli: &PauliString) -> bool {
    qubit_wise_commute(basis, pauli)
}

fn merge_into_basis(basis: &mut PauliString, pauli: &PauliString) {
    for (q, op) in pauli.ops() {
        if basis.op(q) == PauliOp::I && !op.is_identity() {
            basis.set_op(q, op);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(strings: &[&str]) -> Vec<SignedPauli> {
        strings.iter().map(|s| s.parse().unwrap()).collect()
    }

    #[test]
    fn qubit_wise_commutation_examples() {
        let a: PauliString = "ZZI".parse().unwrap();
        assert!(qubit_wise_commute(&a, &"ZIZ".parse().unwrap()));
        assert!(qubit_wise_commute(&a, &"IZI".parse().unwrap()));
        assert!(!qubit_wise_commute(&a, &"XZI".parse().unwrap()));
        // ZZ and XX commute globally but NOT qubit-wise.
        assert!(!qubit_wise_commute(
            &"ZZ".parse().unwrap(),
            &"XX".parse().unwrap()
        ));
    }

    #[test]
    fn grouping_reduces_measurement_count() {
        let observables = obs(&["ZIII", "IZII", "ZZII", "IIZZ", "XXII", "IIXX", "XXXX"]);
        let groups = group_qubitwise_commuting(&observables);
        // All-Z observables share one group; the X observables share another.
        assert!(groups.len() <= 3);
        let covered: usize = groups.iter().map(|g| g.members.len()).sum();
        assert_eq!(covered, observables.len());
    }

    #[test]
    fn group_members_are_all_consistent_with_the_basis() {
        let observables = obs(&["ZZI", "ZIZ", "IZZ", "XIX", "IYY", "XXI"]);
        let groups = group_qubitwise_commuting(&observables);
        for group in &groups {
            for &member in &group.members {
                assert!(
                    qubit_wise_commute(&group.basis, observables[member].pauli()),
                    "member {member} incompatible with basis {}",
                    group.basis
                );
            }
        }
    }

    #[test]
    fn single_observable_is_its_own_group() {
        let observables = obs(&["XYZ"]);
        let groups = group_qubitwise_commuting(&observables);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].basis.to_string(), "XYZ");
        assert_eq!(groups[0].measurement_circuit().len(), (1 + 2));
    }

    #[test]
    fn grouping_transformed_observables_matches_grouping_originals_in_size() {
        // Clifford conjugation preserves qubit counts and commutation, so the
        // number of groups of the absorbed observables stays comparable.
        use quclear_circuit::Circuit;
        use quclear_tableau::CliffordTableau;
        let observables = obs(&["ZZII", "IZZI", "IIZZ", "XXII", "IXXI", "IIXX"]);
        let mut clifford = Circuit::new(4);
        clifford.cx(0, 1);
        clifford.cx(2, 3);
        clifford.h(1);
        let map = CliffordTableau::heisenberg_from_circuit(&clifford);
        let transformed: Vec<SignedPauli> =
            observables.iter().map(|o| map.apply_signed(o)).collect();
        let before = group_qubitwise_commuting(&observables).len();
        let after = group_qubitwise_commuting(&transformed).len();
        assert!(after <= observables.len());
        assert!(before <= observables.len());
    }

    #[test]
    fn empty_input_gives_no_groups() {
        assert!(group_qubitwise_commuting(&[]).is_empty());
        assert!(group_commuting(&[]).is_empty());
    }

    #[test]
    fn general_commuting_groups_are_valid_and_cover() {
        let paulis: Vec<PauliString> = ["ZZII", "XXII", "YYII", "ZIII", "IIZZ", "IIXX", "XYZI"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let groups = group_commuting(&paulis);
        let covered: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(covered, paulis.len());
        for group in &groups {
            for (a, &i) in group.iter().enumerate() {
                for &j in &group[a + 1..] {
                    assert!(
                        paulis[i].commutes_with(&paulis[j]),
                        "group members {i} and {j} must commute"
                    );
                }
            }
        }
        // ZZ/XX/YY on the first pair all mutually commute: one group.
        assert!(groups[0].len() >= 3);
    }

    #[test]
    fn general_groups_never_outnumber_qubitwise_groups() {
        let observables = obs(&["ZZII", "XXII", "IZZI", "IXXI", "YIYI", "ZIIZ"]);
        let paulis: Vec<PauliString> = observables.iter().map(|o| o.pauli().clone()).collect();
        let general = group_commuting(&paulis).len();
        let qubitwise = group_qubitwise_commuting(&observables).len();
        assert!(general <= qubitwise, "{general} > {qubitwise}");
    }

    fn frame(strings: &[&str]) -> PauliFrame {
        let rows: Vec<SignedPauli> = strings.iter().map(|s| s.parse().unwrap()).collect();
        PauliFrame::from_signed(rows[0].num_qubits(), &rows)
    }

    fn is_z_diagonal(p: &SignedPauli) -> bool {
        (0..p.num_qubits()).all(|q| matches!(p.pauli().op(q), PauliOp::I | PauliOp::Z))
    }

    #[test]
    fn diagonalizer_maps_every_row_to_signed_z() {
        use quclear_tableau::CliffordTableau;
        let input = frame(&["ZZ", "XX", "-YY"]);
        let diag = diagonalize_commuting_frame(&input);
        assert_eq!(diag.len(), 3);
        let tableau = CliffordTableau::from_circuit(diag.circuit());
        for i in 0..diag.len() {
            let row = diag.diagonal_pauli(i);
            assert!(is_z_diagonal(&row), "row {i} not Z-diagonal: {row}");
            // Cross-check the frame conjugation against the tableau path.
            assert_eq!(row, tableau.apply_signed(&input.get(i)), "row {i}");
        }
    }

    #[test]
    fn pure_z_frame_needs_no_gates() {
        let diag = diagonalize_commuting_frame(&frame(&["ZZI", "-IZZ", "ZIZ"]));
        assert_eq!(diag.circuit().len(), 0);
        assert_eq!(diag.sign(0), 1.0);
        assert_eq!(diag.sign(1), -1.0);
    }

    #[test]
    #[should_panic(expected = "anticommute")]
    fn diagonalizer_rejects_anticommuting_rows() {
        let _ = diagonalize_commuting_frame(&frame(&["XI", "ZI"]));
    }

    #[test]
    fn outcome_planes_match_expectations_bit_for_bit() {
        let diag = diagonalize_commuting_frame(&frame(&["ZZI", "XXI", "-YYI", "IIZ"]));
        // 70 shots: deliberately not a multiple of 64.
        let indices: Vec<u64> = (0..70u64).map(|i| (i * 2654435761) % 8).collect();
        let shots = ShotBatch::from_indices(3, &indices);
        let expectations = diag.expectations(&shots);
        let planes = diag.outcome_planes(&shots);
        assert_eq!(planes.len(), diag.len());
        for (i, plane) in planes.iter().enumerate() {
            let ones = (0..shots.num_shots()).filter(|&s| plane.get(s)).count();
            let from_plane = (shots.num_shots() - 2 * ones) as f64 / shots.num_shots() as f64;
            assert_eq!(expectations[i].to_bits(), from_plane.to_bits(), "row {i}");
        }
    }

    #[test]
    fn plan_groups_cover_and_divide_the_shot_budget() {
        let plan = MeasurementPlan::from_frame(&frame(&["ZZII", "XXII", "YYII", "XZII", "IIZZ"]));
        let covered: usize = plan.groups().iter().map(|g| g.members().len()).sum();
        assert_eq!(covered, plan.num_observables());
        assert!(plan.num_groups() < plan.num_observables());
        assert!(plan.shot_budget_divisor() > 1.0);
    }

    #[test]
    fn more_members_than_qubits_still_estimates() {
        // Five dependent Z-diagonal members on two qubits: the affine map has
        // more rows than qubits and must be block-chunked.
        let diag = diagonalize_commuting_frame(&frame(&["ZI", "IZ", "ZZ", "-ZI", "-ZZ"]));
        let shots = ShotBatch::from_indices(2, &[0, 1, 2, 3, 1, 0, 2]);
        let expectations = diag.expectations(&shots);
        let planes = diag.outcome_planes(&shots);
        assert_eq!(planes.len(), 5);
        assert_eq!(expectations[0], -expectations[3]);
        assert_eq!(expectations[2], -expectations[4]);
    }

    #[test]
    fn frame_grouping_matches_string_grouping() {
        let rows: Vec<SignedPauli> = ["ZZI", "-XXI", "IZZ", "XYZ", "-IIZ"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let frame = PauliFrame::from_signed(3, &rows);
        let paulis: Vec<PauliString> = rows.iter().map(|r| r.pauli().clone()).collect();
        assert_eq!(group_commuting_frame(&frame), group_commuting(&paulis));
    }
}

//! Measurement grouping of Pauli observables.
//!
//! After Clifford Absorption a VQE workload still has to measure one Pauli
//! observable per term. Section VI-A of the paper notes that because Clifford
//! conjugation preserves commutation relations, the transformed observables
//! can be grouped for simultaneous measurement exactly like the originals
//! (citing the O(n³) measurement-reduction technique). This module provides
//! the standard *qubit-wise commuting* (QWC) grouping: observables in one
//! group share a single measurement-basis circuit, so the number of circuit
//! executions drops from one per observable to one per group.

use quclear_circuit::Circuit;
use quclear_pauli::{PauliFrame, PauliOp, PauliString, SignedPauli};

/// A group of qubit-wise commuting observables together with the shared
/// measurement basis.
#[derive(Clone, Debug)]
pub struct MeasurementGroup {
    /// Indices (into the original observable list) of the group's members.
    pub members: Vec<usize>,
    /// Per-qubit measurement basis: the non-identity operator measured on
    /// each qubit (identity where no member touches the qubit).
    pub basis: PauliString,
}

impl MeasurementGroup {
    /// The single-qubit rotation circuit shared by every member of the group.
    #[must_use]
    pub fn measurement_circuit(&self) -> Circuit {
        crate::extract::basis_change_circuit(self.basis.num_qubits(), &self.basis)
    }
}

/// Returns `true` if two Pauli strings commute *qubit-wise*: on every qubit
/// their operators are equal or at least one is the identity.
#[must_use]
pub fn qubit_wise_commute(a: &PauliString, b: &PauliString) -> bool {
    a.ops().all(|(q, op_a)| {
        let op_b = b.op(q);
        op_a.is_identity() || op_b.is_identity() || op_a == op_b
    })
}

/// Greedily partitions observables into qubit-wise commuting groups
/// (first-fit on the shared basis). Observables within one group can be
/// estimated from the same set of measurement shots.
///
/// # Examples
///
/// ```
/// use quclear_core::group_qubitwise_commuting;
/// use quclear_pauli::SignedPauli;
///
/// let observables: Vec<SignedPauli> =
///     vec!["ZZI".parse()?, "ZIZ".parse()?, "XXI".parse()?];
/// let groups = group_qubitwise_commuting(&observables);
/// assert_eq!(groups.len(), 2); // {ZZI, ZIZ} and {XXI}
/// # Ok::<(), quclear_pauli::ParsePauliError>(())
/// ```
#[must_use]
pub fn group_qubitwise_commuting(observables: &[SignedPauli]) -> Vec<MeasurementGroup> {
    let mut groups: Vec<MeasurementGroup> = Vec::new();
    for (idx, observable) in observables.iter().enumerate() {
        let pauli = observable.pauli();
        let slot = groups.iter_mut().find(|g| compatible(&g.basis, pauli));
        match slot {
            Some(group) => {
                merge_into_basis(&mut group.basis, pauli);
                group.members.push(idx);
            }
            None => groups.push(MeasurementGroup {
                members: vec![idx],
                basis: pauli.clone(),
            }),
        }
    }
    groups
}

/// Greedily partitions Pauli strings into *generally* commuting sets:
/// first-fit into the first group whose every member commutes with the
/// candidate. The pairwise test is the bitwise symplectic product
/// (`x_a·z_b ⊕ z_a·x_b` as two AND-popcount parities over the packed
/// symplectic words), so each comparison costs `O(n/64)` word operations.
///
/// General commutation is strictly coarser than qubit-wise commutation
/// (`ZZ` and `XX` commute globally but not qubit-wise), so these groups are
/// never more numerous than [`group_qubitwise_commuting`]'s — at the price
/// of needing an entangling basis-change circuit per group to measure.
///
/// # Examples
///
/// ```
/// use quclear_core::group_commuting;
/// use quclear_pauli::PauliString;
///
/// let paulis: Vec<PauliString> = vec!["ZZ".parse()?, "XX".parse()?, "XI".parse()?];
/// // ZZ and XX commute; XI anticommutes with ZZ.
/// assert_eq!(group_commuting(&paulis), vec![vec![0, 1], vec![2]]);
/// # Ok::<(), quclear_pauli::ParsePauliError>(())
/// ```
#[must_use]
pub fn group_commuting(paulis: &[PauliString]) -> Vec<Vec<usize>> {
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for (idx, pauli) in paulis.iter().enumerate() {
        let slot = groups
            .iter_mut()
            .find(|g| g.iter().all(|&m| paulis[m].commutes_with(pauli)));
        match slot {
            Some(group) => group.push(idx),
            None => groups.push(vec![idx]),
        }
    }
    groups
}

/// [`group_commuting`] over the rows of a [`PauliFrame`] (e.g. a CA-Pre
/// rewritten observable batch); signs are irrelevant to commutation and are
/// ignored.
#[must_use]
pub fn group_commuting_frame(frame: &PauliFrame) -> Vec<Vec<usize>> {
    let paulis: Vec<PauliString> = (0..frame.num_rows()).map(|i| frame.row_pauli(i)).collect();
    group_commuting(&paulis)
}

/// A Pauli is compatible with a group basis if it is qubit-wise consistent
/// with it (equal or identity on every qubit).
fn compatible(basis: &PauliString, pauli: &PauliString) -> bool {
    qubit_wise_commute(basis, pauli)
}

fn merge_into_basis(basis: &mut PauliString, pauli: &PauliString) {
    for (q, op) in pauli.ops() {
        if basis.op(q) == PauliOp::I && !op.is_identity() {
            basis.set_op(q, op);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(strings: &[&str]) -> Vec<SignedPauli> {
        strings.iter().map(|s| s.parse().unwrap()).collect()
    }

    #[test]
    fn qubit_wise_commutation_examples() {
        let a: PauliString = "ZZI".parse().unwrap();
        assert!(qubit_wise_commute(&a, &"ZIZ".parse().unwrap()));
        assert!(qubit_wise_commute(&a, &"IZI".parse().unwrap()));
        assert!(!qubit_wise_commute(&a, &"XZI".parse().unwrap()));
        // ZZ and XX commute globally but NOT qubit-wise.
        assert!(!qubit_wise_commute(
            &"ZZ".parse().unwrap(),
            &"XX".parse().unwrap()
        ));
    }

    #[test]
    fn grouping_reduces_measurement_count() {
        let observables = obs(&["ZIII", "IZII", "ZZII", "IIZZ", "XXII", "IIXX", "XXXX"]);
        let groups = group_qubitwise_commuting(&observables);
        // All-Z observables share one group; the X observables share another.
        assert!(groups.len() <= 3);
        let covered: usize = groups.iter().map(|g| g.members.len()).sum();
        assert_eq!(covered, observables.len());
    }

    #[test]
    fn group_members_are_all_consistent_with_the_basis() {
        let observables = obs(&["ZZI", "ZIZ", "IZZ", "XIX", "IYY", "XXI"]);
        let groups = group_qubitwise_commuting(&observables);
        for group in &groups {
            for &member in &group.members {
                assert!(
                    qubit_wise_commute(&group.basis, observables[member].pauli()),
                    "member {member} incompatible with basis {}",
                    group.basis
                );
            }
        }
    }

    #[test]
    fn single_observable_is_its_own_group() {
        let observables = obs(&["XYZ"]);
        let groups = group_qubitwise_commuting(&observables);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].basis.to_string(), "XYZ");
        assert_eq!(groups[0].measurement_circuit().len(), (1 + 2));
    }

    #[test]
    fn grouping_transformed_observables_matches_grouping_originals_in_size() {
        // Clifford conjugation preserves qubit counts and commutation, so the
        // number of groups of the absorbed observables stays comparable.
        use quclear_circuit::Circuit;
        use quclear_tableau::CliffordTableau;
        let observables = obs(&["ZZII", "IZZI", "IIZZ", "XXII", "IXXI", "IIXX"]);
        let mut clifford = Circuit::new(4);
        clifford.cx(0, 1);
        clifford.cx(2, 3);
        clifford.h(1);
        let map = CliffordTableau::heisenberg_from_circuit(&clifford);
        let transformed: Vec<SignedPauli> =
            observables.iter().map(|o| map.apply_signed(o)).collect();
        let before = group_qubitwise_commuting(&observables).len();
        let after = group_qubitwise_commuting(&transformed).len();
        assert!(after <= observables.len());
        assert!(before <= observables.len());
    }

    #[test]
    fn empty_input_gives_no_groups() {
        assert!(group_qubitwise_commuting(&[]).is_empty());
        assert!(group_commuting(&[]).is_empty());
    }

    #[test]
    fn general_commuting_groups_are_valid_and_cover() {
        let paulis: Vec<PauliString> = ["ZZII", "XXII", "YYII", "ZIII", "IIZZ", "IIXX", "XYZI"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let groups = group_commuting(&paulis);
        let covered: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(covered, paulis.len());
        for group in &groups {
            for (a, &i) in group.iter().enumerate() {
                for &j in &group[a + 1..] {
                    assert!(
                        paulis[i].commutes_with(&paulis[j]),
                        "group members {i} and {j} must commute"
                    );
                }
            }
        }
        // ZZ/XX/YY on the first pair all mutually commute: one group.
        assert!(groups[0].len() >= 3);
    }

    #[test]
    fn general_groups_never_outnumber_qubitwise_groups() {
        let observables = obs(&["ZZII", "XXII", "IZZI", "IXXI", "YIYI", "ZIIZ"]);
        let paulis: Vec<PauliString> = observables.iter().map(|o| o.pauli().clone()).collect();
        let general = group_commuting(&paulis).len();
        let qubitwise = group_qubitwise_commuting(&observables).len();
        assert!(general <= qubitwise, "{general} > {qubitwise}");
    }

    #[test]
    fn frame_grouping_matches_string_grouping() {
        let rows: Vec<SignedPauli> = ["ZZI", "-XXI", "IZZ", "XYZ", "-IIZ"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let frame = PauliFrame::from_signed(3, &rows);
        let paulis: Vec<PauliString> = rows.iter().map(|r| r.pauli().clone()).collect();
        assert_eq!(group_commuting_frame(&frame), group_commuting(&paulis));
    }
}

//! Clifford Extraction (Algorithm 2 of the QuCLEAR paper).
//!
//! The extractor walks the rotation sequence front to back. For each rotation
//! it synthesizes only the *forward* half of the textbook circuit — the
//! single-qubit basis changes, the CNOT tree and the `Rz` — and defers the
//! mirrored uncomputation to the end of the circuit, where it accumulates
//! into one Clifford subcircuit `U_CL`. Every later rotation is rewritten
//! through the Heisenberg map `P ↦ U_CL† P U_CL` (maintained as a stabilizer
//! tableau), and within each commuting block the rotation that becomes
//! cheapest is scheduled next.
//!
//! # Word-parallel bookkeeping
//!
//! Two structures keep the inner loop cheap:
//!
//! * **Pending-image frame** — the images of *every* not-yet-scheduled
//!   rotation axis under the current Heisenberg map are held in a
//!   column-major [`PauliFrame`]. Advancing the map by one extracted gate
//!   updates all pending images in a single word-parallel pass
//!   ([`quclear_tableau::conjugate_all_by_gate`]) instead of re-applying the
//!   tableau per lookahead string. The frame is compacted once more than
//!   half of its rows have been consumed, so its width tracks the remaining
//!   work.
//! * **Cost memo** — `find_next_pauli` scores `O(block²)` (current,
//!   candidate) pairs, but the score depends only on the two *images*, not
//!   on the map that produced them. A hash memo keyed on the image pair
//!   makes repeated scoring (ubiquitous in ansätze with repeated excitation
//!   structure) a lookup instead of a tree synthesis.

use std::collections::HashMap;

use quclear_circuit::{Circuit, Gate};
use quclear_pauli::{PauliFrame, PauliOp, PauliRotation, PauliString};
use quclear_tableau::{conjugate_all_by_gate, CliffordTableau};

use crate::blocks::CommutingBlocks;
use crate::tree::{FrameLookahead, TreeSynthesizer};

/// Configuration of the Clifford Extraction pass.
#[derive(Clone, Copy, Debug)]
pub struct ExtractionConfig {
    /// Use the recursive CNOT-tree synthesis (Section V-B). When `false`,
    /// subtrees are chained in index order (the non-recursive variant used as
    /// the cost model and in the ablation of Figure 10).
    pub recursive_tree: bool,
    /// Reorder rotations within commuting blocks with `find_next_pauli`
    /// (Section V-C). When `false`, the original order is kept.
    pub reorder_commuting: bool,
    /// How many future Pauli strings the tree synthesizer may look at.
    pub lookahead_depth: usize,
}

impl Default for ExtractionConfig {
    fn default() -> Self {
        ExtractionConfig {
            recursive_tree: true,
            reorder_commuting: true,
            lookahead_depth: 16,
        }
    }
}

/// The output of Clifford Extraction.
///
/// The original program satisfies `U = U_CL · U'` (as matrices), i.e. running
/// [`ExtractionResult::optimized`] followed by [`ExtractionResult::extracted`]
/// reproduces the input circuit exactly. The extracted part is pure Clifford
/// and is meant to be absorbed classically (see [`crate::absorb`]).
#[derive(Clone, Debug)]
pub struct ExtractionResult {
    /// The optimized (non-Clifford) circuit `U'` to run on hardware.
    pub optimized: Circuit,
    /// The extracted Clifford subcircuit `U_CL`, in execution order, that
    /// formally follows `optimized`.
    pub extracted: Circuit,
    /// The Heisenberg map `P ↦ U_CL† · P · U_CL` used to absorb observables.
    pub heisenberg: CliffordTableau,
}

impl ExtractionResult {
    /// The full circuit `optimized` followed by `extracted`; implements the
    /// same unitary as the original rotation sequence (used for verification
    /// and for the ablation stages that do not yet absorb the Clifford).
    #[must_use]
    pub fn full_circuit(&self) -> Circuit {
        let mut full = self.optimized.clone();
        full.append(&self.extracted);
        full
    }

    /// CNOT count of the optimized circuit alone (what actually runs on the
    /// quantum device once the Clifford is absorbed).
    #[must_use]
    pub fn optimized_cnot_count(&self) -> usize {
        self.optimized.cnot_count()
    }

    /// CNOT count of the extracted Clifford subcircuit.
    #[must_use]
    pub fn extracted_cnot_count(&self) -> usize {
        self.extracted.cnot_count()
    }
}

/// Runs Clifford Extraction over a Pauli rotation sequence.
///
/// # Panics
///
/// Panics if the rotations act on different register sizes.
///
/// # Examples
///
/// ```
/// use quclear_core::{extract_clifford, ExtractionConfig};
/// use quclear_pauli::PauliRotation;
///
/// // The paper's motivating example: e^{iZZZZ t1} e^{iYYXX t2}.
/// let rotations = vec![
///     PauliRotation::parse("ZZZZ", 0.3)?,
///     PauliRotation::parse("YYXX", 0.7)?,
/// ];
/// let result = extract_clifford(&rotations, &ExtractionConfig::default());
/// // The optimized circuit needs at most 4 CNOTs (down from 12 native).
/// assert!(result.optimized.cnot_count() <= 4);
/// # Ok::<(), quclear_pauli::ParsePauliError>(())
/// ```
#[must_use]
pub fn extract_clifford(
    rotations: &[PauliRotation],
    config: &ExtractionConfig,
) -> ExtractionResult {
    let n = rotations
        .first()
        .map_or(0, quclear_pauli::PauliRotation::num_qubits);
    for r in rotations {
        assert_eq!(
            r.num_qubits(),
            n,
            "all rotations must act on the same register"
        );
    }

    let mut blocks = if config.reorder_commuting {
        CommutingBlocks::from_rotations(rotations)
    } else {
        CommutingBlocks::singletons(rotations)
    };

    // Frame of all rotation axes; row_ids[b][p] is the frame row holding the
    // image of blocks[b][p] under the Heisenberg map extracted so far.
    let all_axes: Vec<PauliString> = blocks
        .blocks()
        .iter()
        .flatten()
        .map(|r| r.pauli().clone())
        .collect();
    let mut row_ids: Vec<Vec<usize>> = Vec::with_capacity(blocks.num_blocks());
    let mut next_row = 0;
    for block in blocks.blocks() {
        row_ids.push((next_row..next_row + block.len()).collect());
        next_row += block.len();
    }

    let mut state = ExtractionState {
        n,
        config: *config,
        optimized: Circuit::new(n),
        segments: Vec::new(),
        phi: CliffordTableau::identity(n),
        images: PauliFrame::from_paulis(n, &all_axes),
        cost_memo: HashMap::new(),
    };

    let mut processed = 0usize;
    let total = all_axes.len();
    let num_blocks = blocks.num_blocks();
    for block_idx in 0..num_blocks {
        let block_len = blocks.blocks()[block_idx].len();
        for pos in 0..block_len {
            // Choose which commuting rotation to schedule at this position.
            if config.reorder_commuting && pos + 1 < block_len {
                let chosen = state.find_next_pauli(&blocks, &row_ids, block_idx, pos);
                if chosen != pos {
                    let block = &mut blocks.blocks_mut()[block_idx];
                    let rotation = block.remove(chosen);
                    block.insert(pos, rotation);
                    let ids = &mut row_ids[block_idx];
                    let id = ids.remove(chosen);
                    ids.insert(pos, id);
                }
            }
            let lookahead_rows =
                collect_lookahead_rows(&row_ids, block_idx, pos, state.config.lookahead_depth);
            let rotation = blocks.blocks()[block_idx][pos].clone();
            state.process_rotation(&rotation, row_ids[block_idx][pos], &lookahead_rows);
            processed += 1;

            // Compact the frame once most of its rows have been consumed so
            // word-parallel updates only sweep live rows.
            let live = total - processed;
            if state.images.num_rows() > 128 && state.images.num_rows() >= 2 * live {
                compact_frame(&mut state.images, &mut row_ids, block_idx, pos);
            }
        }
    }

    // The extracted Clifford in execution order: the segment extracted last
    // sits closest to the optimized circuit, the one extracted first at the
    // very end (U_CL = W1† · W2† · … · Wk† as matrices).
    let mut extracted = Circuit::new(n);
    for segment in state.segments.iter().rev() {
        extracted.extend(segment.iter().copied());
    }

    ExtractionResult {
        optimized: state.optimized,
        extracted,
        heisenberg: state.phi,
    }
}

/// Collects the frame rows of the rotations that follow (`block_idx`, `pos`),
/// in execution order, up to the lookahead depth. Lookahead crosses block
/// boundaries: later blocks cannot be reordered but their strings still guide
/// the tree structure.
fn collect_lookahead_rows(
    row_ids: &[Vec<usize>],
    block_idx: usize,
    pos: usize,
    depth: usize,
) -> Vec<usize> {
    let mut out = Vec::with_capacity(depth);
    let mut b = block_idx;
    let mut p = pos + 1;
    while out.len() < depth && b < row_ids.len() {
        if p < row_ids[b].len() {
            out.push(row_ids[b][p]);
            p += 1;
        } else {
            b += 1;
            p = 0;
        }
    }
    out
}

/// Rebuilds `images` keeping only the rows of not-yet-processed slots
/// (everything strictly after (`block_idx`, `pos`)), renumbering `row_ids`.
fn compact_frame(
    images: &mut PauliFrame,
    row_ids: &mut [Vec<usize>],
    block_idx: usize,
    pos: usize,
) {
    let mut keep = Vec::new();
    for (b, ids) in row_ids.iter().enumerate().skip(block_idx) {
        let start = if b == block_idx { pos + 1 } else { 0 };
        keep.extend_from_slice(&ids[start..]);
    }
    *images = images.select_rows(&keep);
    let mut new_id = 0;
    for (b, ids) in row_ids.iter_mut().enumerate().skip(block_idx) {
        let start = if b == block_idx { pos + 1 } else { 0 };
        for id in &mut ids[start..] {
            *id = new_id;
            new_id += 1;
        }
    }
}

/// Cost of a candidate (number of non-identity operators) after extracting
/// the Clifford subcircuit that would be synthesized for `current` when
/// optimizing for the candidate. Both arguments are images under the current
/// Heisenberg map — the cost depends on nothing else, which is what makes it
/// memoizable. Signs are irrelevant to the weight, so the simulation is
/// entirely sign-free: the basis layer is applied with two-bit operator maps
/// (X sites conjugate by H, Y sites by S† then H) and the tree gates with
/// the two-operator CX rule.
fn extraction_cost(
    n: usize,
    recursive_tree: bool,
    current: &PauliString,
    candidate: &PauliString,
) -> usize {
    debug_assert!(!current.is_identity());
    let mut updated = candidate.clone();
    for (q, op) in current.ops() {
        match op {
            PauliOp::X => {
                let (x, z) = updated.op(q).xz();
                updated.set_op(q, PauliOp::from_xz(z, x));
            }
            PauliOp::Y => {
                let (x, z) = updated.op(q).xz();
                // S†: (x, z) → (x, z ^ x); then H swaps the bits.
                updated.set_op(q, PauliOp::from_xz(z ^ x, x));
            }
            PauliOp::I | PauliOp::Z => {}
        }
    }
    let lookahead = std::slice::from_ref(&updated);
    let synth = TreeSynthesizer::new(lookahead, recursive_tree);
    let support = current.support();
    let (tree_gates, _) = synth.synthesize(&support);
    // Conjugate the candidate through the tree as well (all CNOTs).
    let mut updated = updated.clone();
    for gate in &tree_gates {
        crate::tree::apply_cx(&mut updated, gate);
    }
    debug_assert_eq!(n, updated.num_qubits());
    updated.weight()
}

struct ExtractionState {
    n: usize,
    config: ExtractionConfig,
    optimized: Circuit,
    /// Extracted subcircuits, one per processed rotation, each in execution
    /// order. The final extracted Clifford is their reverse concatenation.
    segments: Vec<Vec<Gate>>,
    /// `P ↦ U_CL† P U_CL` for the Clifford extracted so far.
    phi: CliffordTableau,
    /// Images of the pending rotation axes under `phi`, advanced gate by
    /// gate in lockstep with it (word-parallel over all pending rows).
    images: PauliFrame,
    /// Memoized `extraction_cost` keyed on the (current, candidate) image
    /// pair — the cost depends on nothing else. Two-level so cache hits
    /// need no key allocation.
    cost_memo: HashMap<PauliString, HashMap<PauliString, usize>>,
}

impl ExtractionState {
    /// The greedy `find_next_pauli` of Algorithm 2: among the not-yet-scheduled
    /// rotations of the current commuting block, pick the one with the fewest
    /// non-identity operators after extracting the current rotation's Clifford
    /// subcircuit.
    fn find_next_pauli(
        &mut self,
        blocks: &CommutingBlocks,
        row_ids: &[Vec<usize>],
        block_idx: usize,
        pos: usize,
    ) -> usize {
        let block = &blocks.blocks()[block_idx];
        let current = self.images.row_pauli(row_ids[block_idx][pos]);
        if current.is_identity() {
            return pos + 1;
        }
        // Take the memo row for `current` out of the map once, instead of
        // re-hashing the key per candidate; it is moved back (keyed by the
        // owned `current`) after the scan.
        let mut memo_row = self.cost_memo.remove(&current).unwrap_or_default();
        let mut best = pos + 1;
        let mut best_cost = usize::MAX;
        let mut candidate = PauliString::identity(self.n);
        debug_assert_eq!(row_ids[block_idx].len(), block.len());
        for (offset, &candidate_row) in row_ids[block_idx][pos + 1..].iter().enumerate() {
            let candidate_idx = pos + 1 + offset;
            self.images.read_row_into(candidate_row, &mut candidate);
            let cost = match memo_row.get(&candidate) {
                Some(&cost) => cost,
                None => {
                    let cost =
                        extraction_cost(self.n, self.config.recursive_tree, &current, &candidate);
                    memo_row.insert(candidate.clone(), cost);
                    cost
                }
            };
            if cost < best_cost {
                best_cost = cost;
                best = candidate_idx;
            }
        }
        self.cost_memo.insert(current, memo_row);
        best
    }

    /// Emits the optimized half-circuit for one rotation and extends the
    /// extracted Clifford with its mirror.
    fn process_rotation(&mut self, rotation: &PauliRotation, row: usize, lookahead_rows: &[usize]) {
        let updated = self.images.get(row);
        let angle = rotation.angle() * updated.sign();
        let pauli = updated.into_pauli();
        if pauli.is_identity() || rotation.angle() == 0.0 {
            // Global phase only; nothing to synthesize.
            return;
        }

        // Single-qubit basis changes (X → H, Y → S†·H) so every non-identity
        // operator becomes Z. The Heisenberg map and the pending images
        // advance together, one word-parallel pass per gate.
        let basis = basis_change_circuit(self.n, &pauli);
        for gate in basis.gates() {
            self.phi.then_gate(gate);
            conjugate_all_by_gate(&mut self.images, gate);
        }

        // CNOT tree optimized for the following Pauli strings (their images
        // now include the basis layer just applied), read operator-by-
        // operator straight out of the pending-image frame.
        let support = pauli.support();
        let (tree_gates, root) = if support.len() == 1 {
            (Vec::new(), support[0])
        } else {
            let lookahead = FrameLookahead::new(&self.images, lookahead_rows);
            let synth = TreeSynthesizer::new(&lookahead, self.config.recursive_tree);
            synth.synthesize(&support)
        };

        // Emit [basis][tree][Rz] into the optimized circuit.
        let mut forward = basis;
        forward.extend(tree_gates.iter().copied());
        self.optimized.append(&forward);
        self.optimized.rz(root, angle);

        // The mirror of the forward Clifford is deferred to the end.
        self.segments.push(forward.inverse().gates().to_vec());

        // Finish updating the Heisenberg map: φ ← (P ↦ W φ(P) W†) with W the
        // forward Clifford just emitted.
        for gate in &tree_gates {
            self.phi.then_gate(gate);
            conjugate_all_by_gate(&mut self.images, gate);
        }
    }
}

/// Builds the single-qubit basis-change layer of a Pauli rotation: `H` on
/// every `X`, `S†` then `H` on every `Y`, nothing on `Z`/`I`. Conjugating the
/// Pauli by this circuit turns every non-identity operator into `Z` with a
/// positive sign.
#[must_use]
pub fn basis_change_circuit(n: usize, pauli: &PauliString) -> Circuit {
    let mut circuit = Circuit::new(n);
    for (q, op) in pauli.ops() {
        match op {
            PauliOp::X => circuit.h(q),
            PauliOp::Y => {
                circuit.sdg(q);
                circuit.h(q);
            }
            PauliOp::I | PauliOp::Z => {}
        }
    }
    circuit
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rot(s: &str, angle: f64) -> PauliRotation {
        PauliRotation::parse(s, angle).unwrap()
    }

    /// Reference textbook synthesis of a rotation sequence (V-shaped blocks),
    /// used to validate the extraction against the tableau algebra.
    fn naive_reference(rotations: &[PauliRotation]) -> Circuit {
        let n = rotations[0].num_qubits();
        let mut qc = Circuit::new(n);
        for r in rotations {
            if r.is_trivial() {
                continue;
            }
            let basis = basis_change_circuit(n, r.pauli());
            let support = r.pauli().support();
            let mut ladder = Circuit::new(n);
            for pair in support.windows(2) {
                ladder.cx(pair[0], pair[1]);
            }
            qc.append(&basis);
            qc.append(&ladder);
            qc.rz(*support.last().unwrap(), r.angle());
            qc.append(&ladder.inverse());
            qc.append(&basis.inverse());
        }
        qc
    }

    #[test]
    fn basis_change_maps_everything_to_z() {
        let p: PauliString = "XYZI".parse().unwrap();
        let circuit = basis_change_circuit(4, &p);
        let map = CliffordTableau::from_circuit(&circuit);
        let image = map.apply(&p);
        assert_eq!(image.to_string(), "+ZZZI");
    }

    #[test]
    fn motivating_example_reduces_to_four_cnots() {
        // e^{iZZZZ t1} e^{iYYXX t2}: 12 CNOTs natively, 4 after extraction
        // (Figure 2 of the paper).
        let rotations = vec![rot("ZZZZ", 0.3), rot("YYXX", 0.7)];
        let result = extract_clifford(&rotations, &ExtractionConfig::default());
        assert_eq!(naive_reference(&rotations).cnot_count(), 12);
        assert!(
            result.optimized.cnot_count() <= 4,
            "expected ≤ 4 CNOTs, got {}",
            result.optimized.cnot_count()
        );
    }

    #[test]
    fn full_circuit_reproduces_the_unitary_on_paulis() {
        // Compare the tableau action of the Clifford parts and spot-check the
        // full unitary with the simulator in the integration tests; here we
        // verify structural invariants.
        let rotations = vec![rot("ZZI", 0.4), rot("IXX", 0.2), rot("YIZ", 0.9)];
        let result = extract_clifford(&rotations, &ExtractionConfig::default());
        assert!(result.extracted.is_clifford());
        // Optimized circuit contains exactly one Rz per non-trivial rotation.
        let rz_count = result
            .optimized
            .gates()
            .iter()
            .filter(|g| matches!(g, Gate::Rz { .. }))
            .count();
        assert_eq!(rz_count, 3);
        // The Heisenberg tableau matches the extracted circuit.
        assert_eq!(
            result.heisenberg,
            CliffordTableau::heisenberg_from_circuit(&result.extracted)
        );
    }

    #[test]
    fn identity_and_zero_angle_rotations_are_skipped() {
        let rotations = vec![rot("III", 0.5), rot("ZZI", 0.0), rot("ZIZ", 0.3)];
        let result = extract_clifford(&rotations, &ExtractionConfig::default());
        let rz_count = result
            .optimized
            .gates()
            .iter()
            .filter(|g| matches!(g, Gate::Rz { .. }))
            .count();
        assert_eq!(rz_count, 1);
    }

    #[test]
    fn single_rotation_has_no_uncompute() {
        let rotations = vec![rot("ZZZZ", 0.5)];
        let result = extract_clifford(&rotations, &ExtractionConfig::default());
        // Half of the native 6 CNOTs stay, half are extracted.
        assert_eq!(result.optimized.cnot_count(), 3);
        assert_eq!(result.extracted.cnot_count(), 3);
    }

    #[test]
    fn extraction_halves_uccsd_like_blocks() {
        // A weight-4 XXYY-type excitation block (8 Paulis) typical of UCCSD.
        let paulis = [
            "XXXY", "XXYX", "XYXX", "YXXX", "YYYX", "YYXY", "YXYY", "XYYY",
        ];
        let rotations: Vec<PauliRotation> = paulis.iter().map(|p| rot(p, 0.11)).collect();
        let native = naive_reference(&rotations).cnot_count();
        let result = extract_clifford(&rotations, &ExtractionConfig::default());
        assert!(
            result.optimized.cnot_count() * 2 < native,
            "extraction should cut CNOTs by more than half: {} vs native {}",
            result.optimized.cnot_count(),
            native
        );
    }

    #[test]
    fn disabling_reordering_and_recursion_still_valid() {
        let rotations = vec![rot("ZZII", 0.1), rot("IZZI", 0.2), rot("XXXX", 0.3)];
        let config = ExtractionConfig {
            recursive_tree: false,
            reorder_commuting: false,
            lookahead_depth: 4,
        };
        let result = extract_clifford(&rotations, &config);
        assert!(result.extracted.is_clifford());
        assert_eq!(
            result.heisenberg,
            CliffordTableau::heisenberg_from_circuit(&result.extracted)
        );
    }

    #[test]
    fn empty_input_gives_empty_result() {
        let result = extract_clifford(&[], &ExtractionConfig::default());
        assert!(result.optimized.is_empty());
        assert!(result.extracted.is_empty());
    }
}

//! Conversion of a Pauli-rotation sequence into blocks of mutually commuting
//! rotations.
//!
//! QuCLEAR allows the rotations *within* a block to be reordered (they
//! commute, so any order implements the same unitary), while the order of the
//! blocks themselves is fixed. This captures local commutation structure
//! without assuming any prior knowledge about the benchmark (Section V-C of
//! the paper).

use quclear_pauli::PauliRotation;

/// A partition of a rotation sequence into maximal runs of mutually commuting
/// rotations.
///
/// # Examples
///
/// ```
/// use quclear_core::CommutingBlocks;
/// use quclear_pauli::PauliRotation;
///
/// let rotations = vec![
///     PauliRotation::parse("ZZI", 0.1)?,
///     PauliRotation::parse("IZZ", 0.2)?, // commutes with the previous one
///     PauliRotation::parse("XII", 0.3)?, // does not commute → new block
/// ];
/// let blocks = CommutingBlocks::from_rotations(&rotations);
/// assert_eq!(blocks.block_sizes(), vec![2, 1]);
/// # Ok::<(), quclear_pauli::ParsePauliError>(())
/// ```
#[derive(Clone, Debug)]
pub struct CommutingBlocks {
    blocks: Vec<Vec<PauliRotation>>,
}

impl CommutingBlocks {
    /// Greedily partitions the rotations: each rotation joins the current
    /// block if it commutes with *every* rotation already in it, otherwise a
    /// new block starts. Complexity O(n·m²) in the worst case (all commuting).
    #[must_use]
    pub fn from_rotations(rotations: &[PauliRotation]) -> Self {
        let mut blocks: Vec<Vec<PauliRotation>> = Vec::new();
        for rotation in rotations {
            let fits = blocks.last().is_some_and(|block| {
                block
                    .iter()
                    .all(|other| other.pauli().commutes_with(rotation.pauli()))
            });
            if fits {
                blocks
                    .last_mut()
                    .expect("fits implies a last block exists")
                    .push(rotation.clone());
            } else {
                blocks.push(vec![rotation.clone()]);
            }
        }
        CommutingBlocks { blocks }
    }

    /// Treats every rotation as its own block (disables intra-block
    /// reordering); used by the ablation experiments.
    #[must_use]
    pub fn singletons(rotations: &[PauliRotation]) -> Self {
        CommutingBlocks {
            blocks: rotations.iter().map(|r| vec![r.clone()]).collect(),
        }
    }

    /// The blocks, in circuit order.
    #[must_use]
    pub fn blocks(&self) -> &[Vec<PauliRotation>] {
        &self.blocks
    }

    /// Mutable access to the blocks (the extractor reorders rotations within
    /// a block in place).
    pub(crate) fn blocks_mut(&mut self) -> &mut [Vec<PauliRotation>] {
        &mut self.blocks
    }

    /// Number of blocks.
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Total number of rotations across all blocks.
    #[must_use]
    pub fn num_rotations(&self) -> usize {
        self.blocks.iter().map(Vec::len).sum()
    }

    /// The sizes of the blocks, in order.
    #[must_use]
    pub fn block_sizes(&self) -> Vec<usize> {
        self.blocks.iter().map(Vec::len).collect()
    }

    /// Flattens the blocks back into a single rotation sequence.
    #[must_use]
    pub fn flatten(&self) -> Vec<PauliRotation> {
        self.blocks.iter().flatten().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rot(s: &str) -> PauliRotation {
        PauliRotation::parse(s, 0.1).unwrap()
    }

    #[test]
    fn all_commuting_forms_one_block() {
        let rotations = vec![rot("ZZII"), rot("IZZI"), rot("IIZZ"), rot("ZIIZ")];
        let blocks = CommutingBlocks::from_rotations(&rotations);
        assert_eq!(blocks.num_blocks(), 1);
        assert_eq!(blocks.num_rotations(), 4);
    }

    #[test]
    fn anticommuting_neighbours_split() {
        let rotations = vec![rot("ZI"), rot("XI"), rot("ZI")];
        let blocks = CommutingBlocks::from_rotations(&rotations);
        assert_eq!(blocks.block_sizes(), vec![1, 1, 1]);
    }

    #[test]
    fn block_requires_commuting_with_every_member() {
        // ZZ commutes with XX, and YY commutes with both, so all three join
        // one block; then XI anticommutes with ZZ and starts a new block.
        let rotations = vec![rot("ZZ"), rot("XX"), rot("YY"), rot("XI")];
        let blocks = CommutingBlocks::from_rotations(&rotations);
        assert_eq!(blocks.block_sizes(), vec![3, 1]);
    }

    #[test]
    fn qaoa_structure_gives_two_blocks_per_layer() {
        // Problem layer (all Z-type, mutually commuting) then mixer layer.
        let rotations = vec![
            rot("ZZI"),
            rot("IZZ"),
            rot("ZIZ"),
            rot("XII"),
            rot("IXI"),
            rot("IIX"),
        ];
        let blocks = CommutingBlocks::from_rotations(&rotations);
        assert_eq!(blocks.num_blocks(), 2);
        assert_eq!(blocks.block_sizes(), vec![3, 3]);
    }

    #[test]
    fn singletons_disable_grouping() {
        let rotations = vec![rot("ZZ"), rot("XX")];
        let blocks = CommutingBlocks::singletons(&rotations);
        assert_eq!(blocks.block_sizes(), vec![1, 1]);
    }

    #[test]
    fn flatten_preserves_order_and_count() {
        let rotations = vec![rot("ZZ"), rot("XX"), rot("ZI")];
        let blocks = CommutingBlocks::from_rotations(&rotations);
        let flat = blocks.flatten();
        assert_eq!(flat.len(), 3);
        assert_eq!(flat[2].pauli().to_string(), "ZI");
    }

    #[test]
    fn empty_input_gives_no_blocks() {
        let blocks = CommutingBlocks::from_rotations(&[]);
        assert_eq!(blocks.num_blocks(), 0);
        assert_eq!(blocks.num_rotations(), 0);
    }
}

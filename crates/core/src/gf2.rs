//! Dense GF(2) linear algebra for the probability post-processing of
//! Clifford Absorption.

use std::fmt;

/// A square matrix over GF(2).
///
/// Used to represent the action of a CNOT network on computational basis
/// states: the network maps `|x⟩ ↦ |A·x ⊕ b⟩` for an invertible `A`.
///
/// # Examples
///
/// ```
/// use quclear_core::Gf2Matrix;
///
/// let mut m = Gf2Matrix::identity(3);
/// m.set(0, 2, true);
/// let v = m.mul_vec(&[false, false, true]);
/// assert_eq!(v, vec![true, false, true]);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Gf2Matrix {
    n: usize,
    rows: Vec<Vec<bool>>,
}

impl Gf2Matrix {
    /// The `n × n` identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let rows = (0..n).map(|i| (0..n).map(|j| i == j).collect()).collect();
        Gf2Matrix { n, rows }
    }

    /// The `n × n` zero matrix.
    #[must_use]
    pub fn zeros(n: usize) -> Self {
        Gf2Matrix {
            n,
            rows: vec![vec![false; n]; n],
        }
    }

    /// Builds a matrix from explicit rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows do not form a square matrix.
    #[must_use]
    pub fn from_rows(rows: Vec<Vec<bool>>) -> Self {
        let n = rows.len();
        for row in &rows {
            assert_eq!(row.len(), n, "Gf2Matrix rows must form a square matrix");
        }
        Gf2Matrix { n, rows }
    }

    /// Matrix dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Entry accessor.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> bool {
        self.rows[row][col]
    }

    /// Entry mutator.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn set(&mut self, row: usize, col: usize, value: bool) {
        self.rows[row][col] = value;
    }

    /// Matrix–vector product over GF(2).
    ///
    /// # Panics
    ///
    /// Panics if the vector length differs from the dimension.
    #[must_use]
    pub fn mul_vec(&self, v: &[bool]) -> Vec<bool> {
        assert_eq!(v.len(), self.n, "vector length must match matrix dimension");
        self.rows
            .iter()
            .map(|row| {
                row.iter()
                    .zip(v)
                    .fold(false, |acc, (&m, &x)| acc ^ (m && x))
            })
            .collect()
    }

    /// Applies the matrix to a basis-state index (bit `q` of the index is the
    /// value of qubit `q`).
    #[must_use]
    pub fn mul_index(&self, index: usize) -> usize {
        let v: Vec<bool> = (0..self.n).map(|q| index & (1 << q) != 0).collect();
        let out = self.mul_vec(&v);
        out.iter().enumerate().fold(
            0usize,
            |acc, (q, &bit)| if bit { acc | (1 << q) } else { acc },
        )
    }

    /// The inverse matrix, if it exists.
    #[must_use]
    pub fn inverse(&self) -> Option<Gf2Matrix> {
        let n = self.n;
        let mut a = self.rows.clone();
        let mut inv = Gf2Matrix::identity(n).rows;
        for col in 0..n {
            let pivot = (col..n).find(|&r| a[r][col])?;
            a.swap(col, pivot);
            inv.swap(col, pivot);
            for r in 0..n {
                if r != col && a[r][col] {
                    for c in 0..n {
                        a[r][c] ^= a[col][c];
                        inv[r][c] ^= inv[col][c];
                    }
                }
            }
        }
        Some(Gf2Matrix { n, rows: inv })
    }

    /// Returns `true` if the matrix is invertible over GF(2).
    #[must_use]
    pub fn is_invertible(&self) -> bool {
        self.inverse().is_some()
    }
}

impl fmt::Debug for Gf2Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Gf2Matrix {}x{}:", self.n, self.n)?;
        for row in &self.rows {
            for &b in row {
                write!(f, "{}", u8::from(b))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_acts_trivially() {
        let m = Gf2Matrix::identity(4);
        assert_eq!(m.mul_index(0b1011), 0b1011);
        assert_eq!(m.inverse().unwrap(), m);
    }

    #[test]
    fn cnot_like_matrix_and_inverse() {
        // x0' = x0, x1' = x0 ⊕ x1 (a CNOT from qubit 0 to qubit 1).
        let mut m = Gf2Matrix::identity(2);
        m.set(1, 0, true);
        assert_eq!(m.mul_index(0b01), 0b11);
        assert_eq!(m.mul_index(0b10), 0b10);
        let inv = m.inverse().unwrap();
        // A CNOT is its own inverse.
        assert_eq!(inv, m);
    }

    #[test]
    fn singular_matrix_has_no_inverse() {
        let m = Gf2Matrix::zeros(3);
        assert!(!m.is_invertible());
        let mut m = Gf2Matrix::identity(3);
        m.set(2, 2, false);
        assert!(m.inverse().is_none());
    }

    #[test]
    fn inverse_roundtrip_on_random_like_matrix() {
        let rows = vec![
            vec![true, true, false, true],
            vec![false, true, true, false],
            vec![true, false, true, false],
            vec![false, false, true, true],
        ];
        let m = Gf2Matrix::from_rows(rows);
        if let Some(inv) = m.inverse() {
            for idx in 0..16 {
                assert_eq!(inv.mul_index(m.mul_index(idx)), idx);
            }
        }
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_rejected() {
        let _ = Gf2Matrix::from_rows(vec![vec![true, false]]);
    }
}

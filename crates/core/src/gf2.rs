//! Dense GF(2) linear algebra for the probability post-processing of
//! Clifford Absorption.
//!
//! The matrix rows are bit-packed ([`BitVec`]), so a matrix–vector product
//! is a handful of AND/popcount word operations per row, and the CA-Post
//! affine map over a *batch* of shots is a matrix product against per-qubit
//! shot bit-planes ([`Gf2Matrix::mul_planes`]) — XOR of whole planes, no
//! per-shot work at all.

use std::fmt;

use quclear_pauli::BitVec;
use rayon::prelude::*;

/// Minimum total words of output (rows × plane words) before
/// [`Gf2Matrix::mul_planes`] fans rows out to the rayon pool; smaller
/// products are faster sequential than the thread-spawn overhead.
const MUL_PLANES_PAR_WORDS: usize = 1 << 14;

/// A square matrix over GF(2) with bit-packed rows.
///
/// Used to represent the action of a CNOT network on computational basis
/// states: the network maps `|x⟩ ↦ |A·x ⊕ b⟩` for an invertible `A`.
///
/// # Examples
///
/// ```
/// use quclear_core::Gf2Matrix;
///
/// let mut m = Gf2Matrix::identity(3);
/// m.set(0, 2, true);
/// let v = m.mul_vec(&[false, false, true]);
/// assert_eq!(v, vec![true, false, true]);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Gf2Matrix {
    n: usize,
    rows: Vec<BitVec>,
}

impl Gf2Matrix {
    /// The `n × n` identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let rows = (0..n)
            .map(|i| {
                let mut row = BitVec::zeros(n);
                row.set(i, true);
                row
            })
            .collect();
        Gf2Matrix { n, rows }
    }

    /// The `n × n` zero matrix.
    #[must_use]
    pub fn zeros(n: usize) -> Self {
        Gf2Matrix {
            n,
            rows: vec![BitVec::zeros(n); n],
        }
    }

    /// Builds a matrix from explicit boolean rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows do not form a square matrix.
    #[must_use]
    pub fn from_rows(rows: Vec<Vec<bool>>) -> Self {
        let n = rows.len();
        let rows = rows
            .into_iter()
            .map(|row| {
                assert_eq!(row.len(), n, "Gf2Matrix rows must form a square matrix");
                BitVec::from_bools(row)
            })
            .collect();
        Gf2Matrix { n, rows }
    }

    /// Builds a matrix from bit-packed rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows do not form a square matrix.
    #[must_use]
    pub fn from_bit_rows(rows: Vec<BitVec>) -> Self {
        let n = rows.len();
        for row in &rows {
            assert_eq!(row.len(), n, "Gf2Matrix rows must form a square matrix");
        }
        Gf2Matrix { n, rows }
    }

    /// Matrix dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Entry accessor.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> bool {
        self.rows[row].get(col)
    }

    /// Entry mutator.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn set(&mut self, row: usize, col: usize, value: bool) {
        self.rows[row].set(col, value);
    }

    /// The bit-packed row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    #[must_use]
    pub fn row(&self, r: usize) -> &BitVec {
        &self.rows[r]
    }

    /// Matrix–vector product over GF(2).
    ///
    /// # Panics
    ///
    /// Panics if the vector length differs from the dimension.
    #[must_use]
    pub fn mul_vec(&self, v: &[bool]) -> Vec<bool> {
        assert_eq!(v.len(), self.n, "vector length must match matrix dimension");
        let packed = BitVec::from_bools(v.iter().copied());
        self.rows
            .iter()
            .map(|row| row.and_parity(&packed))
            .collect()
    }

    /// Applies the matrix to a basis-state index (bit `q` of the index is the
    /// value of qubit `q`): each output bit is one AND + popcount-parity of a
    /// packed row against the index word.
    #[must_use]
    pub fn mul_index(&self, index: usize) -> usize {
        debug_assert!(
            self.n <= 64,
            "mul_index addresses at most 64 qubits; use mul_planes for larger registers"
        );
        let word = index as u64;
        let mut out = 0usize;
        for (r, row) in self.rows.iter().enumerate() {
            let parity = row
                .words()
                .first()
                .map_or(0, |&w| (w & word).count_ones() & 1);
            out |= (parity as usize) << r;
        }
        out
    }

    /// Applies the matrix to a *batch* of basis states stored column-major as
    /// per-qubit bit-planes: `planes[q]` holds bit `q` of every state in the
    /// batch, and output plane `r` is the XOR of the input planes selected by
    /// row `r` — the packed matvec behind bit-plane CA-Post.
    ///
    /// Each output plane is produced in a **single fused pass**
    /// ([`simd::xor_many_into`]): every selected input plane is read once and
    /// the output written once, instead of one read-modify-write sweep per
    /// selected column. Rows are independent, so large products fan out to
    /// the rayon pool (in row order, deterministically).
    ///
    /// # Panics
    ///
    /// Panics if `planes.len()` differs from the dimension or the planes have
    /// inconsistent lengths.
    #[must_use]
    pub fn mul_planes(&self, planes: &[BitVec]) -> Vec<BitVec> {
        assert_eq!(
            planes.len(),
            self.n,
            "plane count must match matrix dimension"
        );
        let shots = planes.first().map_or(0, BitVec::len);
        let words = shots.div_ceil(64);
        let one_row = |row: &BitVec| {
            let mut out = BitVec::zeros(shots);
            let srcs: Vec<&[u64]> = row.iter_ones().map(|c| planes[c].words()).collect();
            simd::xor_many_into(out.words_mut(), &srcs);
            debug_assert!(
                out.tail_is_clear(),
                "fused xor must not set bits past the shot count"
            );
            out
        };
        if self.n * words >= MUL_PLANES_PAR_WORDS && rayon::current_num_threads() > 1 {
            self.rows.par_iter().map(one_row).collect()
        } else {
            self.rows.iter().map(one_row).collect()
        }
    }

    /// The inverse matrix, if it exists (Gauss–Jordan elimination with
    /// word-parallel row XORs).
    #[must_use]
    pub fn inverse(&self) -> Option<Gf2Matrix> {
        let n = self.n;
        let mut a = self.rows.clone();
        let mut inv = Gf2Matrix::identity(n).rows;
        for col in 0..n {
            let pivot = (col..n).find(|&r| a[r].get(col))?;
            a.swap(col, pivot);
            inv.swap(col, pivot);
            let (pivot_a, pivot_inv) = (a[col].clone(), inv[col].clone());
            for r in 0..n {
                if r != col && a[r].get(col) {
                    a[r].xor_with(&pivot_a);
                    inv[r].xor_with(&pivot_inv);
                }
            }
        }
        Some(Gf2Matrix { n, rows: inv })
    }

    /// Returns `true` if the matrix is invertible over GF(2).
    #[must_use]
    pub fn is_invertible(&self) -> bool {
        self.inverse().is_some()
    }
}

impl fmt::Debug for Gf2Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Gf2Matrix {}x{}:", self.n, self.n)?;
        for row in &self.rows {
            for c in 0..self.n {
                write!(f, "{}", u8::from(row.get(c)))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_acts_trivially() {
        let m = Gf2Matrix::identity(4);
        assert_eq!(m.mul_index(0b1011), 0b1011);
        assert_eq!(m.inverse().unwrap(), m);
    }

    #[test]
    fn cnot_like_matrix_and_inverse() {
        // x0' = x0, x1' = x0 ⊕ x1 (a CNOT from qubit 0 to qubit 1).
        let mut m = Gf2Matrix::identity(2);
        m.set(1, 0, true);
        assert_eq!(m.mul_index(0b01), 0b11);
        assert_eq!(m.mul_index(0b10), 0b10);
        let inv = m.inverse().unwrap();
        // A CNOT is its own inverse.
        assert_eq!(inv, m);
    }

    #[test]
    fn singular_matrix_has_no_inverse() {
        let m = Gf2Matrix::zeros(3);
        assert!(!m.is_invertible());
        let mut m = Gf2Matrix::identity(3);
        m.set(2, 2, false);
        assert!(m.inverse().is_none());
    }

    #[test]
    fn inverse_roundtrip_on_random_like_matrix() {
        let rows = vec![
            vec![true, true, false, true],
            vec![false, true, true, false],
            vec![true, false, true, false],
            vec![false, false, true, true],
        ];
        let m = Gf2Matrix::from_rows(rows);
        if let Some(inv) = m.inverse() {
            for idx in 0..16 {
                assert_eq!(inv.mul_index(m.mul_index(idx)), idx);
            }
        }
    }

    #[test]
    fn mul_planes_matches_per_index_map() {
        // x0' = x0 ⊕ x2, x1' = x1, x2' = x0 ⊕ x1 ⊕ x2.
        let m = Gf2Matrix::from_rows(vec![
            vec![true, false, true],
            vec![false, true, false],
            vec![true, true, true],
        ]);
        // A batch of 70 states (crosses a word boundary).
        let states: Vec<usize> = (0..70).map(|i| (i * 37) % 8).collect();
        let mut planes = vec![BitVec::zeros(states.len()); 3];
        for (s, &x) in states.iter().enumerate() {
            for (q, plane) in planes.iter_mut().enumerate() {
                plane.set(s, x & (1 << q) != 0);
            }
        }
        let out = m.mul_planes(&planes);
        for (s, &x) in states.iter().enumerate() {
            let want = m.mul_index(x);
            for (q, plane) in out.iter().enumerate() {
                assert_eq!(plane.get(s), want & (1 << q) != 0, "state {s} bit {q}");
            }
        }
    }

    #[test]
    fn packed_and_boolean_rows_agree() {
        let rows = vec![
            vec![true, true, false, true],
            vec![false, true, true, false],
            vec![true, false, true, false],
            vec![false, false, true, true],
        ];
        let m = Gf2Matrix::from_rows(rows.clone());
        let bit_rows: Vec<BitVec> = rows
            .iter()
            .map(|r| BitVec::from_bools(r.iter().copied()))
            .collect();
        assert_eq!(m, Gf2Matrix::from_bit_rows(bit_rows));
        let v = [true, false, true, true];
        let want: Vec<bool> = rows
            .iter()
            .map(|r| r.iter().zip(&v).fold(false, |acc, (&m, &x)| acc ^ (m && x)))
            .collect();
        assert_eq!(m.mul_vec(&v), want);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_rejected() {
        let _ = Gf2Matrix::from_rows(vec![vec![true, false]]);
    }
}

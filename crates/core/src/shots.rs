//! Bit-plane storage of measurement-shot batches (CA-Post at scale).
//!
//! A [`ShotBatch`] stores `s` computational-basis measurement outcomes
//! **column-major**: one [`BitVec`] per qubit whose bit `i` is that qubit's
//! value in shot `i`. In this layout the CA-Post affine map `x ↦ A·x ⊕ b`
//! is a packed GF(2) matvec over whole planes ([`Gf2Matrix::mul_planes`]
//! plus per-row complements), and the expectation value of a Z-type
//! observable is one XOR-reduction of its support planes followed by a
//! popcount — `O(s/64)` words per observable, with no per-shot or per-bit
//! loop anywhere.
//!
//! Ingestion from packed basis-state indices transposes 64 shots at a time
//! with the classic word-parallel 64×64 bit-matrix transpose, so even the
//! layout change never touches individual bits.

use std::collections::BTreeMap;

use quclear_pauli::{transpose64_pack32, transpose64_top, BitVec, PauliString};
use rayon::prelude::*;

/// Number of bits per storage word (matches [`BitVec`]).
const WORD_BITS: usize = 64;

/// Minimum total words of work (observables × plane words) before
/// [`ShotBatch::parity_expectations`] fans observables out to the rayon
/// pool.
const EXPECTATIONS_PAR_WORDS: usize = 1 << 14;

/// Minimum 64-shot transpose blocks before pack/unpack fans blocks out to
/// the rayon pool (each block is an independent 64×64 bit transpose).
const TRANSPOSE_PAR_BLOCKS: usize = 1 << 10;

/// A batch of measurement shots stored as per-qubit bit-planes.
///
/// # Examples
///
/// ```
/// use quclear_core::ShotBatch;
///
/// // Three 2-qubit shots: |11⟩, |01⟩, |10⟩ (bit q of the index = qubit q).
/// let batch = ShotBatch::from_indices(2, &[0b11, 0b01, 0b10]);
/// assert_eq!(batch.num_shots(), 3);
/// assert_eq!(batch.index(1), 0b01);
/// // ⟨Z₀⟩ over the batch: outcomes −1, −1, +1.
/// let z0: quclear_pauli::PauliString = "ZI".parse()?;
/// assert!((batch.parity_expectation_of(&z0) + 1.0 / 3.0).abs() < 1e-12);
/// # Ok::<(), quclear_pauli::ParsePauliError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShotBatch {
    n: usize,
    shots: usize,
    /// `planes[q]` bit `i` = value of qubit `q` in shot `i`.
    planes: Vec<BitVec>,
}

impl ShotBatch {
    /// Packs basis-state indices (bit `q` of an index = value of qubit `q`)
    /// into bit-planes, 64 shots per transposed block.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64` (indices cannot address more qubits; build from
    /// explicit planes instead).
    #[must_use]
    pub fn from_indices(n: usize, shots: &[u64]) -> Self {
        assert!(n <= 64, "u64 shot indices address at most 64 qubits");
        let count = shots.len();
        let words = count.div_ceil(WORD_BITS);
        let mut planes = vec![BitVec::zeros(count); n];
        if n == 0 {
            return ShotBatch {
                n,
                shots: count,
                planes,
            };
        }
        // Each 64-shot block transposes independently; the plane stitch
        // stays sequential (one word store per qubit per block). The
        // parallel path materializes the transposed blocks; the sequential
        // path scatters each block straight from registers so no
        // blocks-sized intermediate ever leaves the cache. Only the first
        // `n` of each block's 64 transposed rows become planes, so the
        // butterfly ladder is pruned to that prefix — and for `n ≤ 32` the
        // source load fuses with the first stage into a half-size block.
        let parallel = words >= TRANSPOSE_PAR_BLOCKS && rayon::current_num_threads() > 1;
        if n <= 32 {
            let pack_block = |w: &usize| -> [u64; 32] {
                let base = *w * WORD_BITS;
                transpose64_pack32(&shots[base..count.min(base + WORD_BITS)], n)
            };
            if parallel {
                let word_idx: Vec<usize> = (0..words).collect();
                let blocks: Vec<[u64; 32]> = word_idx.par_iter().map(pack_block).collect();
                for (w, block) in blocks.iter().enumerate() {
                    for (q, plane) in planes.iter_mut().enumerate() {
                        plane.words_mut()[w] = block[q];
                    }
                }
            } else {
                for w in 0..words {
                    let block = pack_block(&w);
                    for (q, plane) in planes.iter_mut().enumerate() {
                        plane.words_mut()[w] = block[q];
                    }
                }
            }
        } else {
            let transpose_block = |w: &usize| -> [u64; 64] {
                let base = *w * WORD_BITS;
                let chunk = &shots[base..count.min(base + WORD_BITS)];
                let mut block = [0u64; 64];
                block[..chunk.len()].copy_from_slice(chunk);
                transpose64_top(&mut block, n);
                block
            };
            if parallel {
                let word_idx: Vec<usize> = (0..words).collect();
                let blocks: Vec<[u64; 64]> = word_idx.par_iter().map(transpose_block).collect();
                for (w, block) in blocks.iter().enumerate() {
                    for (q, plane) in planes.iter_mut().enumerate() {
                        plane.words_mut()[w] = block[q];
                    }
                }
            } else {
                for w in 0..words {
                    let block = transpose_block(&w);
                    for (q, plane) in planes.iter_mut().enumerate() {
                        plane.words_mut()[w] = block[q];
                    }
                }
            }
        }
        debug_assert!(
            planes.iter().all(BitVec::tail_is_clear),
            "plane stitch must not write past the shot count"
        );
        ShotBatch {
            n,
            shots: count,
            planes,
        }
    }

    /// Builds a batch from explicit per-qubit planes (all the same length).
    ///
    /// # Panics
    ///
    /// Panics if the planes have inconsistent lengths.
    #[must_use]
    pub fn from_planes(planes: Vec<BitVec>) -> Self {
        let shots = planes.first().map_or(0, BitVec::len);
        for plane in &planes {
            assert_eq!(plane.len(), shots, "shot planes must share one length");
        }
        ShotBatch {
            n: planes.len(),
            shots,
            planes,
        }
    }

    /// Number of qubits per shot.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Number of shots in the batch.
    #[must_use]
    pub fn num_shots(&self) -> usize {
        self.shots
    }

    /// The bit-plane of qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    #[must_use]
    pub fn plane(&self, q: usize) -> &BitVec {
        &self.planes[q]
    }

    /// All planes, qubit-major.
    #[must_use]
    pub fn planes(&self) -> &[BitVec] {
        &self.planes
    }

    /// Reads back shot `i` as a basis-state index.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn index(&self, i: usize) -> u64 {
        assert!(i < self.shots, "shot {i} out of range {}", self.shots);
        self.planes
            .iter()
            .enumerate()
            .fold(0u64, |acc, (q, plane)| acc | (u64::from(plane.get(i)) << q))
    }

    /// Unpacks the batch back into basis-state indices (inverse transpose,
    /// 64 shots per block).
    #[must_use]
    pub fn to_indices(&self) -> Vec<u64> {
        let words = self.shots.div_ceil(WORD_BITS);
        let mut out = vec![0u64; self.shots];
        if self.shots == 0 {
            return out;
        }
        // Only the shots actually present in a block are copied out, so the
        // tail block's transpose is pruned to its occupied prefix.
        let transpose_block = |w: &usize| -> [u64; 64] {
            let mut block = [0u64; 64];
            for (q, plane) in self.planes.iter().enumerate() {
                block[q] = plane.words()[*w];
            }
            let take = self.shots.min((*w + 1) * WORD_BITS) - *w * WORD_BITS;
            transpose64_top(&mut block, take);
            block
        };
        if words >= TRANSPOSE_PAR_BLOCKS && rayon::current_num_threads() > 1 {
            let word_idx: Vec<usize> = (0..words).collect();
            let blocks: Vec<[u64; 64]> = word_idx.par_iter().map(transpose_block).collect();
            for (w, block) in blocks.iter().enumerate() {
                let base = w * WORD_BITS;
                let take = self.shots.min(base + WORD_BITS) - base;
                out[base..base + take].copy_from_slice(&block[..take]);
            }
        } else {
            for w in 0..words {
                let block = transpose_block(&w);
                let base = w * WORD_BITS;
                let take = self.shots.min(base + WORD_BITS) - base;
                out[base..base + take].copy_from_slice(&block[..take]);
            }
        }
        out
    }

    /// Histogram of the batch as (basis index → count).
    #[must_use]
    pub fn counts(&self) -> BTreeMap<u64, u64> {
        let mut counts = BTreeMap::new();
        for index in self.to_indices() {
            *counts.entry(index).or_insert(0) += 1;
        }
        counts
    }

    /// Estimates `⟨∏_{q ∈ support} Z_q⟩` over the batch: the XOR of the
    /// support planes is the per-shot parity, and its popcount counts the
    /// `−1` outcomes.
    ///
    /// The XOR-fold and the popcount are fused ([`simd::xor_popcount`]): no
    /// parity plane is ever materialized, so an observable costs one read of
    /// each support plane and zero allocation regardless of the shot count.
    ///
    /// Returns `0.0` for an empty batch.
    ///
    /// # Panics
    ///
    /// Panics if the mask length differs from the qubit count.
    #[must_use]
    pub fn parity_expectation(&self, support: &BitVec) -> f64 {
        assert_eq!(
            support.len(),
            self.n,
            "support mask length must match the qubit count"
        );
        if self.shots == 0 {
            return 0.0;
        }
        let words = self.shots.div_ceil(WORD_BITS);
        let srcs: Vec<&[u64]> = support
            .iter_ones()
            .map(|q| self.planes[q].words())
            .collect();
        let minus = simd::xor_popcount(&srcs, words) as f64;
        (self.shots as f64 - 2.0 * minus) / self.shots as f64
    }

    /// Estimates [`Self::parity_expectation`] for a whole set of observables
    /// at once, fanning the (independent) observables out to the rayon pool
    /// when the batch is large enough to amortize the threads.
    ///
    /// The result order matches the input order and is bit-identical to
    /// calling [`Self::parity_expectation`] per support sequentially.
    ///
    /// # Panics
    ///
    /// Panics if any mask length differs from the qubit count.
    #[must_use]
    pub fn parity_expectations(&self, supports: &[BitVec]) -> Vec<f64> {
        let words = self.shots.div_ceil(WORD_BITS);
        if supports.len() * words >= EXPECTATIONS_PAR_WORDS && rayon::current_num_threads() > 1 {
            supports
                .par_iter()
                .map(|s| self.parity_expectation(s))
                .collect()
        } else {
            supports
                .iter()
                .map(|s| self.parity_expectation(s))
                .collect()
        }
    }

    /// [`Self::parity_expectation`] with the support taken from a Pauli
    /// string's non-identity positions (the estimator for an observable
    /// measured after its basis-change circuit).
    ///
    /// # Panics
    ///
    /// Panics if the observable's qubit count differs from the batch's.
    #[must_use]
    pub fn parity_expectation_of(&self, observable: &PauliString) -> f64 {
        assert_eq!(
            observable.num_qubits(),
            self.n,
            "observable qubit count must match the batch"
        );
        let mut support = observable.x_bits().clone();
        support.or_with(observable.z_bits());
        self.parity_expectation(&support)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transpose64_is_an_involution_and_moves_bits() {
        use quclear_pauli::transpose64;
        let mut a = [0u64; 64];
        a[3] = 1 << 17;
        a[63] = (1 << 0) | (1 << 63);
        let orig = a;
        transpose64(&mut a);
        assert_eq!(a[17] & (1 << 3), 1 << 3);
        assert_eq!(a[0] & (1 << 63), 1 << 63);
        assert_eq!(a[63] & (1 << 63), 1 << 63);
        transpose64(&mut a);
        assert_eq!(a, orig);
    }

    #[test]
    fn pack_unpack_roundtrip_non_multiple_of_64() {
        let shots: Vec<u64> = (0..157).map(|i| (i * 2654435761) % (1 << 20)).collect();
        let batch = ShotBatch::from_indices(20, &shots);
        assert_eq!(batch.num_shots(), 157);
        assert_eq!(batch.num_qubits(), 20);
        assert_eq!(batch.to_indices(), shots);
        for (i, &s) in shots.iter().enumerate() {
            assert_eq!(batch.index(i), s, "shot {i}");
        }
        // Plane tail bits beyond the shot count stay zero.
        for plane in batch.planes() {
            assert!(plane.count_ones() <= 157);
        }
    }

    #[test]
    fn counts_match_a_direct_histogram() {
        let shots: Vec<u64> = vec![3, 1, 3, 0, 1, 3];
        let batch = ShotBatch::from_indices(2, &shots);
        let counts = batch.counts();
        assert_eq!(counts.get(&3), Some(&3));
        assert_eq!(counts.get(&1), Some(&2));
        assert_eq!(counts.get(&0), Some(&1));
        assert_eq!(counts.values().sum::<u64>(), 6);
    }

    #[test]
    fn parity_expectation_matches_per_shot_loop() {
        let shots: Vec<u64> = (0..200).map(|i| (i * 7919) % (1 << 10)).collect();
        let batch = ShotBatch::from_indices(10, &shots);
        for mask_bits in [0b1u64, 0b1010101010, 0b1111111111, 0] {
            let mut mask = BitVec::zeros(10);
            for q in 0..10 {
                mask.set(q, mask_bits & (1 << q) != 0);
            }
            let scalar: f64 = shots
                .iter()
                .map(|&s| {
                    if (s & mask_bits).count_ones() % 2 == 1 {
                        -1.0
                    } else {
                        1.0
                    }
                })
                .sum::<f64>()
                / shots.len() as f64;
            assert!(
                (batch.parity_expectation(&mask) - scalar).abs() < 1e-12,
                "mask {mask_bits:b}"
            );
        }
    }

    #[test]
    fn parity_expectation_of_uses_full_support() {
        // Y counts as support (X and Z bits both set).
        let batch = ShotBatch::from_indices(3, &[0b001, 0b010]);
        let obs: PauliString = "YIZ".parse().unwrap();
        // Support = {0, 2}: parities 1 and 0 → outcomes −1, +1.
        assert!((batch.parity_expectation_of(&obs) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn empty_batch_is_well_defined() {
        let batch = ShotBatch::from_indices(4, &[]);
        assert_eq!(batch.num_shots(), 0);
        assert!(batch.to_indices().is_empty());
        assert_eq!(batch.parity_expectation(&BitVec::zeros(4)), 0.0);
    }

    #[test]
    #[should_panic(expected = "at most 64 qubits")]
    fn oversized_register_is_rejected() {
        let _ = ShotBatch::from_indices(65, &[0]);
    }
}

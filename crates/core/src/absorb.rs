//! Clifford Absorption (Section VI of the QuCLEAR paper).
//!
//! The Clifford subcircuit `U_CL` produced by extraction never has to run on
//! the quantum device:
//!
//! * **Observable measurements** (VQE-style workloads): each Pauli observable
//!   `O` is replaced by `O' = U_CL† O U_CL` (CA-Pre), measured with a layer of
//!   single-qubit basis rotations, and mapped back by the CA-Post dictionary.
//! * **Probability measurements** (QAOA-style workloads): the extracted
//!   Clifford reduces to a single layer of single-qubit basis rotations
//!   followed by a CNOT network (Proposition 1); the basis layer is appended
//!   to the quantum circuit and the CNOT network becomes a classical affine
//!   map `x ↦ A·x ⊕ b` applied to measured bitstrings.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

use quclear_circuit::{Circuit, Gate};
use quclear_pauli::{BitVec, PauliFrame, PauliOp, PauliString, SignedPauli};
use quclear_tableau::{conjugate_all_by_gate, CliffordTableau};

use crate::gf2::Gf2Matrix;
use crate::shots::ShotBatch;

/// Rewrites a set of Pauli observables through the extracted Clifford:
/// `O'_i = U_CL† O_i U_CL` (the CA-Pre step for observable measurements).
///
/// `heisenberg` is the map `P ↦ U_CL† P U_CL`, available directly from
/// [`ExtractionResult::heisenberg`](crate::ExtractionResult::heisenberg).
#[must_use]
pub fn absorb_observables(
    heisenberg: &CliffordTableau,
    observables: &[SignedPauli],
) -> Vec<SignedPauli> {
    observables
        .iter()
        .map(|o| heisenberg.apply_signed(o))
        .collect()
}

/// A reusable, batch-first recipe for Clifford Absorption: everything that
/// depends only on the extracted Clifford (never on the observables, angles
/// or shots), built once and applied to arbitrarily many observable sets.
///
/// CA-Pre rewrites a whole observable set in one word-parallel sweep: the
/// set is loaded into a [`PauliFrame`] and conjugated through the extracted
/// Clifford either by replaying the inverse extracted gates with
/// [`conjugate_all_by_gate`] (`O(gates · observables/64)` word operations)
/// or, when only the Heisenberg tableau is available, with
/// [`CliffordTableau::apply_frame`]. No per-string
/// [`CliffordTableau::apply`] calls are made anywhere.
///
/// # Examples
///
/// ```
/// use quclear_core::{compile, QuClearConfig};
/// use quclear_pauli::{PauliRotation, SignedPauli};
///
/// let program = vec![
///     PauliRotation::parse("ZZZZ", 0.3)?,
///     PauliRotation::parse("YYXX", 0.7)?,
/// ];
/// let result = compile(&program, &QuClearConfig::default());
/// let plan = result.absorption_plan();
/// let observables: Vec<SignedPauli> = vec!["XXZZ".parse()?, "ZIIZ".parse()?];
/// let absorbed = plan.absorb(&observables);
/// assert_eq!(absorbed.len(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct AbsorptionPlan {
    n: usize,
    heisenberg: CliffordTableau,
    /// Gate sequence whose frame replay implements `P ↦ U_CL† P U_CL`
    /// (the gates of the inverse extracted circuit, in time order). Shared so
    /// cloning a plan — e.g. into every cached template — is cheap.
    replay: Option<Arc<[Gate]>>,
}

impl AbsorptionPlan {
    /// Builds a plan from the Heisenberg map alone. CA-Pre then uses the
    /// tableau frame kernel ([`CliffordTableau::apply_frame`]).
    #[must_use]
    pub fn from_heisenberg(heisenberg: CliffordTableau) -> Self {
        AbsorptionPlan {
            n: heisenberg.num_qubits(),
            heisenberg,
            replay: None,
        }
    }

    /// Builds a plan from the Heisenberg map plus the extracted Clifford
    /// circuit it was derived from. CA-Pre then replays the inverse
    /// extracted gates over the observable frame, which is the cheaper path
    /// whenever the extracted circuit is shorter than `O(n²)` gates.
    ///
    /// # Panics
    ///
    /// Panics if the circuit and tableau disagree on the qubit count.
    #[must_use]
    pub fn from_extraction(heisenberg: CliffordTableau, extracted: &Circuit) -> Self {
        assert_eq!(
            extracted.num_qubits(),
            heisenberg.num_qubits(),
            "extracted circuit and Heisenberg tableau must share a register"
        );
        let replay: Arc<[Gate]> = extracted.inverse().gates().to_vec().into();
        AbsorptionPlan {
            n: heisenberg.num_qubits(),
            heisenberg,
            replay: Some(replay),
        }
    }

    /// Number of qubits.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// The Heisenberg map `P ↦ U_CL† P U_CL`.
    #[must_use]
    pub fn heisenberg(&self) -> &CliffordTableau {
        &self.heisenberg
    }

    /// Rewrites every row of `frame` through the extracted Clifford in
    /// place: row `i` becomes `U_CL† · row_i · U_CL`.
    ///
    /// Both available kernels are word-parallel over the rows; the plan
    /// picks the cheaper one. Gate replay costs one plane update per gate
    /// (`O(gates · rows/64)`), the tableau sweep one masked multiply per
    /// (generator, qubit) pair (`O(n² · rows/64)`), so replay wins exactly
    /// when the extracted circuit is shorter than ~`2n²` gates (QAOA CNOT
    /// networks) and the tableau wins on deep extractions (UCCSD).
    ///
    /// # Panics
    ///
    /// Panics if the frame's qubit count differs from the plan's.
    pub fn rewrite_frame_in_place(&self, frame: &mut PauliFrame) {
        assert_eq!(
            frame.num_qubits(),
            self.n,
            "frame qubit count must match the absorption plan"
        );
        match &self.replay {
            Some(gates) if gates.len() <= 2 * self.n * self.n => {
                for gate in gates.iter() {
                    conjugate_all_by_gate(frame, gate);
                }
            }
            _ => *frame = self.heisenberg.apply_frame(frame),
        }
    }

    /// Rewrites a frame through the extracted Clifford, returning the image.
    ///
    /// # Panics
    ///
    /// Panics if the frame's qubit count differs from the plan's.
    #[must_use]
    pub fn rewrite_frame(&self, frame: &PauliFrame) -> PauliFrame {
        let mut out = frame.clone();
        self.rewrite_frame_in_place(&mut out);
        out
    }

    /// CA-Pre on a whole observable set: loads the set into one frame,
    /// conjugates it through the extracted Clifford in a single sweep, and
    /// returns the rewritten observables (with their coefficient signs).
    ///
    /// # Panics
    ///
    /// Panics if any observable's qubit count differs from the plan's.
    #[must_use]
    pub fn absorb(&self, observables: &[SignedPauli]) -> AbsorbedObservables {
        let mut frame = PauliFrame::from_signed(self.n, observables);
        self.rewrite_frame_in_place(&mut frame);
        AbsorbedObservables { frame }
    }
}

/// A batch of observables rewritten by CA-Pre, stored as a [`PauliFrame`].
///
/// Row `i` is `U_CL† O_i U_CL` for input observable `O_i`; the sign plane
/// carries the coefficient signs (input sign folded with the conjugation
/// sign), so `⟨O_i⟩ = sign(i) · ⟨P'_i⟩` where `P'_i` is the sign-free row
/// measured on the optimized circuit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AbsorbedObservables {
    frame: PauliFrame,
}

impl AbsorbedObservables {
    /// Number of observables in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.frame.num_rows()
    }

    /// Returns `true` if the batch is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.frame.num_rows() == 0
    }

    /// Number of qubits.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.frame.num_qubits()
    }

    /// The rewritten observables as a column-major frame (the layout the
    /// batch estimators consume directly).
    #[must_use]
    pub fn frame(&self) -> &PauliFrame {
        &self.frame
    }

    /// The coefficient-sign plane: bit `i` set means `O'_i` carries `−1`.
    #[must_use]
    pub fn signs(&self) -> &BitVec {
        self.frame.sign_plane()
    }

    /// The `i`-th rewritten observable.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn get(&self, i: usize) -> SignedPauli {
        self.frame.get(i)
    }

    /// The coefficient sign of the `i`-th rewritten observable (`±1.0`).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn sign(&self, i: usize) -> f64 {
        if self.frame.sign(i) {
            -1.0
        } else {
            1.0
        }
    }

    /// Unpacks the batch into signed Pauli strings, in input order.
    #[must_use]
    pub fn to_vec(&self) -> Vec<SignedPauli> {
        (0..self.len()).map(|i| self.frame.get(i)).collect()
    }

    /// The single-qubit basis-rotation circuit to append before measuring
    /// the `i`-th rewritten observable in the computational basis.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn measurement_circuit(&self, i: usize) -> Circuit {
        measurement_basis_circuit(self.num_qubits(), &self.frame.row_pauli(i))
    }

    /// CA-Post sign folding: converts the measured expectation of the `i`-th
    /// sign-free rewritten Pauli into the expectation of the `i`-th original
    /// observable.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn original_expectation(&self, i: usize, measured_pauli_expectation: f64) -> f64 {
        self.sign(i) * measured_pauli_expectation
    }

    /// Greedily partitions the rewritten observables into groups of mutually
    /// commuting strings (bitwise symplectic-product tests), so a VQE
    /// workload measures one basis per group instead of one per observable.
    #[must_use]
    pub fn commuting_groups(&self) -> Vec<Vec<usize>> {
        crate::grouping::group_commuting_frame(&self.frame)
    }

    /// Greedy *qubit-wise* commuting groups of the rewritten observables,
    /// each with its shared measurement basis.
    #[must_use]
    pub fn qubitwise_groups(&self) -> Vec<crate::grouping::MeasurementGroup> {
        crate::grouping::group_qubitwise_commuting(&self.to_vec())
    }
}

/// The CA-Pre + CA-Post bookkeeping for observable measurements: keeps the
/// original observables, their absorbed counterparts and the mapping between
/// the two.
#[derive(Clone, Debug)]
pub struct ObservableAbsorption {
    original: Vec<SignedPauli>,
    transformed: Vec<SignedPauli>,
}

impl ObservableAbsorption {
    /// Absorbs `observables` through the extracted Clifford.
    #[must_use]
    pub fn new(heisenberg: &CliffordTableau, observables: &[SignedPauli]) -> Self {
        let transformed = absorb_observables(heisenberg, observables);
        ObservableAbsorption {
            original: observables.to_vec(),
            transformed,
        }
    }

    /// Number of observables.
    #[must_use]
    pub fn len(&self) -> usize {
        self.original.len()
    }

    /// Returns `true` if there are no observables.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.original.is_empty()
    }

    /// The original observables, in input order.
    #[must_use]
    pub fn original(&self) -> &[SignedPauli] {
        &self.original
    }

    /// The absorbed observables (`U_CL† O U_CL`), in input order.
    #[must_use]
    pub fn transformed(&self) -> &[SignedPauli] {
        &self.transformed
    }

    /// The single-qubit basis-rotation circuit to append before measuring the
    /// `i`-th absorbed observable in the computational basis.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn measurement_circuit(&self, i: usize) -> Circuit {
        measurement_basis_circuit(
            self.transformed[i].num_qubits(),
            self.transformed[i].pauli(),
        )
    }

    /// CA-Post: converts the measured expectation value of the `i`-th
    /// *transformed* Pauli string into the expectation value of the `i`-th
    /// original observable (folding in both signs).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn original_expectation(&self, i: usize, transformed_pauli_expectation: f64) -> f64 {
        // ⟨O_i⟩ = sign(O_i) · sign-free original … the transformed observable
        // already carries the combined sign: ⟨O_i⟩ = sign(O'_i)·⟨P'_i⟩ where
        // the input observable sign was folded during absorption.
        self.transformed[i].sign() * transformed_pauli_expectation
    }
}

/// Builds the single-qubit rotation circuit that maps the measurement of a
/// Pauli observable to computational-basis measurements: `H` for `X`,
/// `S†`+`H` for `Y`, nothing for `Z`/`I`.
#[must_use]
pub fn measurement_basis_circuit(n: usize, observable: &PauliString) -> Circuit {
    crate::extract::basis_change_circuit(n, observable)
}

/// Estimates `⟨P⟩` from computational-basis probabilities measured *after*
/// [`measurement_basis_circuit`] was applied: the expectation is the ±1
/// parity of the measured bits over the observable's support.
///
/// # Panics
///
/// Panics if `probabilities.len() != 2^n`.
#[must_use]
pub fn expectation_from_probabilities(observable: &PauliString, probabilities: &[f64]) -> f64 {
    let n = observable.num_qubits();
    assert_eq!(
        probabilities.len(),
        1 << n,
        "probability vector has wrong length"
    );
    let mask: usize = observable
        .support()
        .iter()
        .fold(0, |acc, &q| acc | (1 << q));
    probabilities
        .iter()
        .enumerate()
        .map(|(x, p)| {
            let parity = (x & mask).count_ones() % 2;
            if parity == 1 {
                -p
            } else {
                *p
            }
        })
        .sum()
}

/// Error returned when the extracted Clifford cannot be absorbed into
/// probability measurements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AbsorptionError {
    /// No single-qubit basis change on this qubit turns the extracted
    /// Clifford into a classical (basis-permuting) network. This happens when
    /// the input was not of the QAOA form covered by Proposition 1; use
    /// observable absorption instead.
    NotReducible {
        /// The qubit at which the reduction failed.
        qubit: usize,
    },
    /// The recovered CNOT network matrix was singular (cannot happen for a
    /// valid Clifford; kept as a defensive error instead of a panic).
    SingularNetwork,
}

impl fmt::Display for AbsorptionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbsorptionError::NotReducible { qubit } => write!(
                f,
                "extracted Clifford is not a basis layer + CNOT network at qubit {qubit}"
            ),
            AbsorptionError::SingularNetwork => write!(f, "recovered CNOT network is singular"),
        }
    }
}

impl Error for AbsorptionError {}

/// The CA modules for probability-distribution measurements: a single layer
/// of measurement-basis rotations (CA-Pre) plus a classical affine map over
/// GF(2) applied to measured bitstrings (CA-Post).
#[derive(Clone, Debug)]
pub struct ProbabilityAbsorber {
    n: usize,
    /// Per-qubit measurement basis: `Z` (nothing), `X` (`H`) or `Y` (`S†H`).
    basis_layer: Vec<PauliOp>,
    /// The classical linear map `A`.
    matrix: Gf2Matrix,
    /// The affine offset `b`.
    offset: Vec<bool>,
}

impl ProbabilityAbsorber {
    /// Analyses the extracted Clifford circuit and splits it into a basis
    /// layer and a classical network.
    ///
    /// # Errors
    ///
    /// Returns [`AbsorptionError::NotReducible`] if the Clifford is not of the
    /// basis-layer + CNOT-network form guaranteed by Proposition 1 for QAOA
    /// circuits.
    pub fn from_extracted(extracted: &Circuit) -> Result<Self, AbsorptionError> {
        let n = extracted.num_qubits();
        let forward = CliffordTableau::from_circuit(extracted);
        let is_z_type = |p: &SignedPauli| p.pauli().x_bits().is_zero();

        let mut basis_layer = Vec::with_capacity(n);
        let mut rows: Vec<Vec<bool>> = Vec::with_capacity(n);
        let mut signs: Vec<bool> = Vec::with_capacity(n);
        for q in 0..n {
            // Find the single-qubit Pauli whose image under E·(·)·E† is a
            // Z-type string; that determines the measurement basis of qubit q.
            // E Y_q E† = i·(E X_q E†)(E Z_q E†) is computed from the rows.
            let candidates = [
                (PauliOp::Z, forward.z_image(q)),
                (PauliOp::X, forward.x_image(q)),
                (PauliOp::Y, y_image(&forward, q)),
            ];
            let mut chosen = None;
            for (basis, image) in candidates {
                if is_z_type(&image) {
                    chosen = Some((basis, image));
                    break;
                }
            }
            let Some((basis, image)) = chosen else {
                return Err(AbsorptionError::NotReducible { qubit: q });
            };
            basis_layer.push(basis);
            rows.push((0..n).map(|j| image.pauli().op(j) == PauliOp::Z).collect());
            signs.push(image.is_negative());
        }

        let b_matrix = Gf2Matrix::from_rows(rows);
        let matrix = b_matrix.inverse().ok_or(AbsorptionError::SingularNetwork)?;
        let offset = matrix.mul_vec(&signs);
        Ok(ProbabilityAbsorber {
            n,
            basis_layer,
            matrix,
            offset,
        })
    }

    /// Number of qubits.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// The per-qubit measurement basis (`Z`, `X` or `Y`). For QAOA circuits
    /// this is the "single layer of Hadamard gates" of Proposition 1 (all `X`
    /// on mixer qubits).
    #[must_use]
    pub fn basis_layer(&self) -> &[PauliOp] {
        &self.basis_layer
    }

    /// The CA-Pre circuit: single-qubit rotations appended to the optimized
    /// circuit before measuring in the computational basis.
    #[must_use]
    pub fn pre_circuit(&self) -> Circuit {
        let mut circuit = Circuit::new(self.n);
        for (q, &basis) in self.basis_layer.iter().enumerate() {
            match basis {
                PauliOp::X => circuit.h(q),
                PauliOp::Y => {
                    circuit.sdg(q);
                    circuit.h(q);
                }
                _ => {}
            }
        }
        circuit
    }

    /// The classical linear map `A` of the CNOT network.
    #[must_use]
    pub fn matrix(&self) -> &Gf2Matrix {
        &self.matrix
    }

    /// The affine offset `b` of the network (bit flips).
    #[must_use]
    pub fn offset(&self) -> &[bool] {
        &self.offset
    }

    /// CA-Post on a single measured basis-state index: returns the basis
    /// state the *original* circuit would have produced.
    #[must_use]
    pub fn map_index(&self, measured: usize) -> usize {
        let mapped = self.matrix.mul_index(measured);
        let offset_bits =
            self.offset
                .iter()
                .enumerate()
                .fold(0usize, |acc, (q, &b)| if b { acc | (1 << q) } else { acc });
        mapped ^ offset_bits
    }

    /// CA-Post on a full probability vector (length `2^n`).
    ///
    /// # Panics
    ///
    /// Panics if the vector length is not `2^n`.
    #[must_use]
    pub fn post_process_probabilities(&self, probabilities: &[f64]) -> Vec<f64> {
        assert_eq!(
            probabilities.len(),
            1 << self.n,
            "probability vector has wrong length"
        );
        let mut out = vec![0.0; probabilities.len()];
        for (x, &p) in probabilities.iter().enumerate() {
            out[self.map_index(x)] += p;
        }
        out
    }

    /// CA-Post on a bit-plane shot batch: applies `x ↦ A·x ⊕ b` to every
    /// shot as a packed GF(2) matvec over the per-qubit planes
    /// ([`Gf2Matrix::mul_planes`]) followed by one whole-plane complement
    /// per set offset bit — `O(n² · shots/64)` word operations with no
    /// per-shot or per-bit loop.
    ///
    /// # Panics
    ///
    /// Panics if the batch's qubit count differs from the absorber's.
    #[must_use]
    pub fn post_process_shots(&self, shots: &ShotBatch) -> ShotBatch {
        assert_eq!(
            shots.num_qubits(),
            self.n,
            "shot batch qubit count must match the absorber"
        );
        let mut planes = self.matrix.mul_planes(shots.planes());
        for (plane, &flip) in planes.iter_mut().zip(&self.offset) {
            if flip {
                plane.flip_all();
            }
        }
        ShotBatch::from_planes(planes)
    }

    /// CA-Post on measurement counts: the cost is `O(m·s)` for `s` distinct
    /// measured states and `m` CNOTs, independent of `2^n`.
    #[must_use]
    pub fn post_process_counts(&self, counts: &BTreeMap<usize, u64>) -> BTreeMap<usize, u64> {
        let mut out = BTreeMap::new();
        for (&state, &count) in counts {
            *out.entry(self.map_index(state)).or_insert(0) += count;
        }
        out
    }
}

/// Computes `E Y_q E†` from the X and Z images: `Y = i·X·Z`, so the image is
/// `i · (E X_q E†)(E Z_q E†)`, which is again a ±1 Pauli.
fn y_image(forward: &CliffordTableau, q: usize) -> SignedPauli {
    let x_img = forward.x_image(q);
    let z_img = forward.z_image(q);
    let (pauli, phase) = x_img.pauli().mul(z_img.pauli());
    // Total phase: i · i^phase · (±1 from the row signs). It must be ±1.
    let mut exponent = (1 + phase) % 4;
    if x_img.is_negative() {
        exponent = (exponent + 2) % 4;
    }
    if z_img.is_negative() {
        exponent = (exponent + 2) % 4;
    }
    assert!(exponent % 2 == 0, "Y image must be Hermitian");
    SignedPauli::new(pauli, exponent == 2)
}

/// A convenience check for Proposition 1: returns `true` when the extracted
/// Clifford of a circuit is absorbable into probability measurements.
#[must_use]
pub fn is_probability_absorbable(extracted: &Circuit) -> bool {
    ProbabilityAbsorber::from_extracted(extracted).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use quclear_circuit::Gate as G;

    #[test]
    fn absorb_observables_through_cnot() {
        // U_CL = CNOT(0→1): O = XX becomes XI (Heisenberg map of CNOT).
        let mut e = Circuit::new(2);
        e.cx(0, 1);
        let heisenberg = CliffordTableau::heisenberg_from_circuit(&e);
        let obs: Vec<SignedPauli> = vec!["XX".parse().unwrap(), "ZZ".parse().unwrap()];
        let absorbed = absorb_observables(&heisenberg, &obs);
        assert_eq!(absorbed[0].to_string(), "+XI");
        assert_eq!(absorbed[1].to_string(), "+IZ");
    }

    #[test]
    fn observable_absorption_bookkeeping() {
        let mut e = Circuit::new(2);
        e.h(0);
        e.cx(0, 1);
        let heisenberg = CliffordTableau::heisenberg_from_circuit(&e);
        let obs: Vec<SignedPauli> = vec!["-ZI".parse().unwrap()];
        let absorption = ObservableAbsorption::new(&heisenberg, &obs);
        assert_eq!(absorption.len(), 1);
        assert!(!absorption.is_empty());
        // ⟨-ZI⟩ on the original = transformed sign × measured ⟨pauli⟩.
        let sign = absorption.transformed()[0].sign();
        assert_eq!(absorption.original_expectation(0, 0.5), sign * 0.5);
    }

    #[test]
    fn measurement_basis_circuit_shapes() {
        let c = measurement_basis_circuit(3, &"XYZ".parse().unwrap());
        // X needs one H, Y needs S†+H, Z needs nothing.
        assert_eq!(c.len(), 3);
        assert!(matches!(c.gates()[0], G::H(0)));
    }

    #[test]
    fn expectation_from_probabilities_parity() {
        // Distribution concentrated on |11⟩ on 2 qubits: ⟨ZZ⟩ = +1, ⟨ZI⟩ = -1.
        let mut probs = vec![0.0; 4];
        probs[0b11] = 1.0;
        assert!(
            (expectation_from_probabilities(&"ZZ".parse().unwrap(), &probs) - 1.0).abs() < 1e-12
        );
        assert!(
            (expectation_from_probabilities(&"ZI".parse().unwrap(), &probs) + 1.0).abs() < 1e-12
        );
    }

    #[test]
    fn pure_cnot_network_is_absorbable_with_z_basis() {
        let mut e = Circuit::new(3);
        e.cx(0, 1);
        e.cx(1, 2);
        let absorber = ProbabilityAbsorber::from_extracted(&e).unwrap();
        assert!(absorber.basis_layer().iter().all(|&b| b == PauliOp::Z));
        assert!(absorber.pre_circuit().is_empty());
        // CNOT(0→1) then CNOT(1→2) maps |100⟩ → |111⟩ (qubit 0 set).
        assert_eq!(absorber.map_index(0b001), 0b111);
        assert_eq!(absorber.map_index(0), 0);
    }

    #[test]
    fn hadamard_layer_plus_cnot_network_is_absorbable() {
        // E = [CNOTs][H layer] in time order H first.
        let mut e = Circuit::new(2);
        e.h(0);
        e.h(1);
        e.cx(0, 1);
        let absorber = ProbabilityAbsorber::from_extracted(&e).unwrap();
        assert!(absorber.basis_layer().iter().all(|&b| b == PauliOp::X));
        assert_eq!(absorber.pre_circuit().len(), 2);
    }

    #[test]
    fn x_gates_produce_affine_offsets() {
        let mut e = Circuit::new(2);
        e.x(0);
        e.cx(0, 1);
        let absorber = ProbabilityAbsorber::from_extracted(&e).unwrap();
        // |00⟩ → X(0) → |10⟩ (index 0b01) → CX → |11⟩ (index 0b11).
        assert_eq!(absorber.map_index(0), 0b11);
    }

    #[test]
    fn non_reducible_clifford_is_rejected() {
        // An S gate sandwiched between Hadamards is not a basis layer + CNOT
        // network on qubit 0 together with the entangling structure below.
        let mut e = Circuit::new(2);
        e.h(0);
        e.s(0);
        e.cx(0, 1);
        e.h(1);
        e.s(1);
        e.h(1);
        e.cx(1, 0);
        e.s(0);
        let result = ProbabilityAbsorber::from_extracted(&e);
        // Either it reduces (fine: S contributes only phases) or it reports a
        // clean error — it must never panic. For this specific circuit the
        // map is not basis-preserving, so expect an error.
        assert!(result.is_err() || is_probability_absorbable(&e));
    }

    #[test]
    fn counts_post_processing_matches_index_map() {
        let mut e = Circuit::new(3);
        e.cx(2, 0);
        e.cx(0, 1);
        let absorber = ProbabilityAbsorber::from_extracted(&e).unwrap();
        let mut counts = BTreeMap::new();
        counts.insert(0b101usize, 60u64);
        counts.insert(0b011usize, 40u64);
        let post = absorber.post_process_counts(&counts);
        assert_eq!(post.values().sum::<u64>(), 100);
        assert_eq!(post.get(&absorber.map_index(0b101)), Some(&60));
    }

    #[test]
    fn absorption_plan_matches_per_string_absorption() {
        let mut e = Circuit::new(3);
        e.h(0);
        e.cx(0, 1);
        e.s(2);
        e.cx(1, 2);
        e.sdg(0);
        let heisenberg = CliffordTableau::heisenberg_from_circuit(&e);
        let observables: Vec<SignedPauli> = ["XXI", "-ZZZ", "IYI", "ZIX", "-YYY", "III"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let scalar = absorb_observables(&heisenberg, &observables);
        // Replay path (from the extracted circuit).
        let plan = AbsorptionPlan::from_extraction(heisenberg.clone(), &e);
        assert_eq!(plan.absorb(&observables).to_vec(), scalar);
        // Tableau-only path (frame apply).
        let plan = AbsorptionPlan::from_heisenberg(heisenberg);
        let absorbed = plan.absorb(&observables);
        assert_eq!(absorbed.to_vec(), scalar);
        // Sign plane mirrors the per-row signs.
        for (i, o) in scalar.iter().enumerate() {
            assert_eq!(absorbed.signs().get(i), o.is_negative());
            assert_eq!(absorbed.sign(i), o.sign());
            assert_eq!(absorbed.original_expectation(i, 0.25), o.sign() * 0.25);
        }
    }

    #[test]
    fn absorbed_observables_grouping_and_circuits() {
        let mut e = Circuit::new(2);
        e.cx(0, 1);
        let plan =
            AbsorptionPlan::from_extraction(CliffordTableau::heisenberg_from_circuit(&e), &e);
        let observables: Vec<SignedPauli> = vec!["ZZ".parse().unwrap(), "XX".parse().unwrap()];
        let absorbed = plan.absorb(&observables);
        // CNOT absorption: ZZ → IZ, XX → XI — they commute qubit-wise.
        let groups = absorbed.commuting_groups();
        let covered: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(covered, 2);
        assert!(!absorbed.qubitwise_groups().is_empty());
        // Measurement circuit of the X-type row needs one H.
        assert_eq!(absorbed.measurement_circuit(1).len(), 1);
    }

    #[test]
    fn shot_post_processing_matches_per_shot_map() {
        let mut e = Circuit::new(5);
        e.x(1);
        e.cx(0, 1);
        e.cx(1, 3);
        e.cx(4, 2);
        e.x(4);
        let absorber = ProbabilityAbsorber::from_extracted(&e).unwrap();
        // 137 shots: crosses a word boundary with a partial tail.
        let shots: Vec<u64> = (0..137).map(|i| (i * 2654435761) % (1 << 5)).collect();
        let batch = ShotBatch::from_indices(5, &shots);
        let mapped = absorber.post_process_shots(&batch);
        let scalar: Vec<u64> = shots
            .iter()
            .map(|&s| absorber.map_index(s as usize) as u64)
            .collect();
        assert_eq!(mapped.to_indices(), scalar);
        // Counts agree with the BTreeMap path.
        let mut counts = BTreeMap::new();
        for &s in &shots {
            *counts.entry(s as usize).or_insert(0u64) += 1;
        }
        let mapped_counts = absorber.post_process_counts(&counts);
        let plane_counts: BTreeMap<usize, u64> = mapped
            .counts()
            .into_iter()
            .map(|(k, v)| (k as usize, v))
            .collect();
        assert_eq!(mapped_counts, plane_counts);
    }

    #[test]
    fn probability_post_processing_is_a_permutation() {
        let mut e = Circuit::new(3);
        e.h(1);
        e.cx(1, 2);
        e.cx(0, 1);
        let absorber = ProbabilityAbsorber::from_extracted(&e).unwrap();
        let probs: Vec<f64> = (0..8).map(|i| (i as f64 + 1.0) / 36.0).collect();
        let post = absorber.post_process_probabilities(&probs);
        let mut sorted_in = probs.clone();
        let mut sorted_out = post.clone();
        sorted_in.sort_by(f64::total_cmp);
        sorted_out.sort_by(f64::total_cmp);
        assert_eq!(
            sorted_in, sorted_out,
            "post-processing must permute the distribution"
        );
    }
}

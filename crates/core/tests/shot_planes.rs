//! Property tests pinning the bit-plane CA-Post shot pipeline to scalar
//! oracles: the packed affine map `x ↦ A·x ⊕ b` must agree bit-for-bit
//! with a naive per-shot, per-bit loop — including shot counts that are
//! not multiples of 64 — and the word-parallel expectation accumulator
//! must agree with per-shot parity counting.
//!
//! These run in the release-mode CI job as well: the word kernels compile
//! to different code under optimization, and release is the configuration
//! the throughput claims are made in.

use proptest::prelude::*;
use quclear_core::{Gf2Matrix, ShotBatch};
use quclear_pauli::BitVec;

/// An invertible-ish random GF(2) matrix (identity + random off-diagonal
/// XORs, i.e. a product of elementary row operations — always invertible).
fn affine_map(n: usize) -> impl Strategy<Value = (Gf2Matrix, Vec<bool>)> {
    (
        prop::collection::vec((0usize..n, 0usize..n), 0..3 * n),
        prop::collection::vec(any::<bool>(), n),
    )
        .prop_map(move |(ops, offset)| {
            let mut m = Gf2Matrix::identity(n);
            for (r, c) in ops {
                if r != c {
                    // row_r += row_c: an elementary operation over GF(2).
                    let src = m.row(c).clone();
                    let mut dst = m.row(r).clone();
                    dst.xor_with(&src);
                    for (col, bit) in (0..n).map(|col| (col, dst.get(col))) {
                        m.set(r, col, bit);
                    }
                }
            }
            (m, offset)
        })
}

/// The scalar oracle: applies `x ↦ A·x ⊕ b` one shot and one bit at a time.
fn naive_affine(matrix: &Gf2Matrix, offset: &[bool], shots: &[u64]) -> Vec<u64> {
    let n = matrix.dim();
    shots
        .iter()
        .map(|&x| {
            let mut out = 0u64;
            for (r, &flip) in offset.iter().enumerate().take(n) {
                let mut bit = flip;
                for c in 0..n {
                    bit ^= matrix.get(r, c) && (x >> c) & 1 == 1;
                }
                out |= u64::from(bit) << r;
            }
            out
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Packed plane affine map == naive per-shot per-bit loop, for shot
    /// counts straddling word boundaries (0..200 covers 0, partial words,
    /// exact multiples and 3 words).
    #[test]
    fn plane_affine_map_matches_naive_per_shot_loop(
        (matrix, offset) in affine_map(9),
        shots in prop::collection::vec(0u64..(1 << 9), 0..200),
    ) {
        let batch = ShotBatch::from_indices(9, &shots);
        let mut planes = matrix.mul_planes(batch.planes());
        for (plane, &flip) in planes.iter_mut().zip(&offset) {
            if flip {
                plane.flip_all();
            }
        }
        let mapped = ShotBatch::from_planes(planes);
        prop_assert_eq!(mapped.to_indices(), naive_affine(&matrix, &offset, &shots));
    }

    /// Pack → unpack is the identity for any shot count.
    #[test]
    fn pack_unpack_roundtrip(
        shots in prop::collection::vec(any::<u64>().prop_map(|x| x & 0xFFFFF), 0..300),
    ) {
        let batch = ShotBatch::from_indices(20, &shots);
        prop_assert_eq!(batch.to_indices(), shots);
    }

    /// The popcount expectation accumulator == per-shot parity counting.
    #[test]
    fn parity_expectation_matches_per_shot_counting(
        shots in prop::collection::vec(0u64..(1 << 11), 1..200),
        mask in 0u64..(1 << 11),
    ) {
        let batch = ShotBatch::from_indices(11, &shots);
        let mut support = BitVec::zeros(11);
        for q in 0..11 {
            support.set(q, mask & (1 << q) != 0);
        }
        let scalar: f64 = shots
            .iter()
            .map(|&s| if (s & mask).count_ones() % 2 == 1 { -1.0 } else { 1.0 })
            .sum::<f64>() / shots.len() as f64;
        prop_assert!((batch.parity_expectation(&support) - scalar).abs() < 1e-12);
    }

    /// The batched `parity_expectations` sweep returns exactly the same
    /// values, in the same order, as calling `parity_expectation` per
    /// support — the parallel path must be bit-identical to the scalar one.
    #[test]
    fn batched_expectations_match_per_support_calls(
        shots in prop::collection::vec(0u64..(1 << 11), 1..200),
        masks in prop::collection::vec(0u64..(1 << 11), 0..40),
    ) {
        let batch = ShotBatch::from_indices(11, &shots);
        let supports: Vec<BitVec> = masks
            .iter()
            .map(|&mask| {
                let mut support = BitVec::zeros(11);
                for q in 0..11 {
                    support.set(q, mask & (1 << q) != 0);
                }
                support
            })
            .collect();
        let batched = batch.parity_expectations(&supports);
        prop_assert_eq!(batched.len(), supports.len());
        for (got, support) in batched.iter().zip(&supports) {
            // Exact equality: both paths run the identical word kernel.
            prop_assert_eq!(*got, batch.parity_expectation(support));
        }
    }
}

//! End-to-end correctness of Clifford Extraction and Absorption, validated
//! against the dense state-vector simulator.

use proptest::prelude::*;
use quclear_circuit::Circuit;
use quclear_core::{
    basis_change_circuit, compile, expectation_from_probabilities, extract_clifford,
    ExtractionConfig, QuClearConfig,
};
use quclear_pauli::{PauliOp, PauliRotation, PauliString, SignedPauli};
use quclear_sim::StateVector;

/// Textbook (V-shaped) synthesis of a Pauli-rotation program, used as the
/// reference unitary.
fn naive_reference(rotations: &[PauliRotation], n: usize) -> Circuit {
    let mut qc = Circuit::new(n);
    for r in rotations {
        if r.is_trivial() {
            continue;
        }
        let basis = basis_change_circuit(n, r.pauli());
        let support = r.pauli().support();
        let mut ladder = Circuit::new(n);
        for pair in support.windows(2) {
            ladder.cx(pair[0], pair[1]);
        }
        qc.append(&basis);
        qc.append(&ladder);
        qc.rz(*support.last().unwrap(), r.angle());
        qc.append(&ladder.inverse());
        qc.append(&basis.inverse());
    }
    qc
}

fn rotation_strategy(n: usize, len: usize) -> impl Strategy<Value = Vec<PauliRotation>> {
    let single = (prop::collection::vec(0u8..4, n), -3.0f64..3.0).prop_map(move |(ops, angle)| {
        let ops: Vec<PauliOp> = ops
            .into_iter()
            .map(|v| match v {
                0 => PauliOp::I,
                1 => PauliOp::X,
                2 => PauliOp::Y,
                _ => PauliOp::Z,
            })
            .collect();
        PauliRotation::new(PauliString::from_ops(&ops), angle)
    });
    prop::collection::vec(single, 1..=len)
}

#[test]
fn paper_figure_2_example_full_equivalence() {
    // e^{iZZZZ t1} e^{iYYXX t2} with observable XXZZ: after extraction and
    // absorption, measuring the new observable on the optimized circuit gives
    // the same expectation value.
    let n = 4;
    let program = vec![
        PauliRotation::parse("ZZZZ", 0.37).unwrap(),
        PauliRotation::parse("YYXX", -0.91).unwrap(),
    ];
    let result = compile(&program, &QuClearConfig::default());

    let reference_state = StateVector::from_circuit(&naive_reference(&program, n));
    let optimized_state = StateVector::from_circuit(&result.optimized);

    // (1) The full circuit (optimized + extracted) is unitarily equivalent.
    let full_state = StateVector::from_circuit(&result.full_circuit());
    assert!(full_state.approx_eq_up_to_phase(&reference_state, 1e-9));

    // (2) Observable absorption: ⟨XXZZ⟩ original = sign·⟨P'⟩ optimized.
    let observable: SignedPauli = "XXZZ".parse().unwrap();
    let absorption = result.absorb_observables(std::slice::from_ref(&observable));
    let direct = reference_state.expectation_signed(&observable);
    let transformed = &absorption.transformed()[0];
    let measured = optimized_state.expectation(transformed.pauli());
    let via_absorption = absorption.original_expectation(0, measured);
    assert!(
        (direct - via_absorption).abs() < 1e-9,
        "direct {direct} vs absorbed {via_absorption}"
    );
}

#[test]
fn qaoa_probability_absorption_matches_distribution() {
    // A 4-qubit QAOA layer for MaxCut on a cycle: |+⟩ initialization is part
    // of QAOA, so prepend Hadamards to both circuits.
    let n = 4;
    let gamma = 0.63;
    let beta = 1.17;
    let mut program = Vec::new();
    for (a, b) in [(0usize, 1usize), (1, 2), (2, 3), (3, 0)] {
        let mut p = PauliString::identity(n);
        p.set_op(a, PauliOp::Z);
        p.set_op(b, PauliOp::Z);
        program.push(PauliRotation::new(p, gamma));
    }
    for q in 0..n {
        program.push(PauliRotation::new(
            PauliString::single(n, q, PauliOp::X),
            beta,
        ));
    }

    let result = compile(&program, &QuClearConfig::default());
    let absorber = result
        .probability_absorber()
        .expect("Proposition 1 applies");

    let mut plus_layer = Circuit::new(n);
    for q in 0..n {
        plus_layer.h(q);
    }

    // Reference distribution.
    let mut reference = plus_layer.clone();
    reference.append(&naive_reference(&program, n));
    let reference_probs = StateVector::from_circuit(&reference).probabilities();

    // Optimized execution: |+⟩ prep, optimized circuit, CA-Pre basis layer,
    // measurement, then classical CA-Post.
    let mut optimized = plus_layer;
    optimized.append(&result.optimized);
    optimized.append(&absorber.pre_circuit());
    let measured_probs = StateVector::from_circuit(&optimized).probabilities();
    let recovered = absorber.post_process_probabilities(&measured_probs);

    for (i, (a, b)) in reference_probs.iter().zip(&recovered).enumerate() {
        assert!(
            (a - b).abs() < 1e-9,
            "probability mismatch at basis state {i}: {a} vs {b}"
        );
    }
}

#[test]
fn uccsd_like_block_observable_absorption() {
    // A double-excitation block plus a couple of Hamiltonian observables.
    let n = 4;
    let paulis = [
        "XXXY", "XXYX", "XYXX", "YXXX", "YYYX", "YYXY", "YXYY", "XYYY",
    ];
    let program: Vec<PauliRotation> = paulis
        .iter()
        .enumerate()
        .map(|(i, p)| PauliRotation::parse(p, 0.1 + 0.07 * i as f64).unwrap())
        .collect();
    let result = compile(&program, &QuClearConfig::default());

    let reference_state = StateVector::from_circuit(&naive_reference(&program, n));
    let optimized_state = StateVector::from_circuit(&result.optimized);

    let observables: Vec<SignedPauli> = ["ZIII", "IZII", "ZZII", "XXII", "YYZZ"]
        .iter()
        .map(|s| s.parse().unwrap())
        .collect();
    let absorption = result.absorb_observables(&observables);
    for (i, obs) in observables.iter().enumerate() {
        let direct = reference_state.expectation_signed(obs);
        let measured = optimized_state.expectation(absorption.transformed()[i].pauli());
        let recovered = absorption.original_expectation(i, measured);
        assert!(
            (direct - recovered).abs() < 1e-9,
            "observable {obs}: direct {direct} vs recovered {recovered}"
        );
    }
}

#[test]
fn measurement_basis_circuit_reproduces_expectations() {
    // Measuring ⟨P'⟩ through the basis-rotation circuit + Z-parity estimator
    // agrees with the exact expectation.
    let program = vec![
        PauliRotation::parse("ZZI", 0.81).unwrap(),
        PauliRotation::parse("IXX", -0.44).unwrap(),
        PauliRotation::parse("YZY", 0.29).unwrap(),
    ];
    let result = compile(&program, &QuClearConfig::default());
    let optimized_state = StateVector::from_circuit(&result.optimized);

    let observables: Vec<SignedPauli> = vec!["XYZ".parse().unwrap(), "ZZZ".parse().unwrap()];
    let absorption = result.absorb_observables(&observables);
    for i in 0..observables.len() {
        let transformed = absorption.transformed()[i].pauli();
        let exact = optimized_state.expectation(transformed);

        let mut with_basis = result.optimized.clone();
        with_basis.append(&absorption.measurement_circuit(i));
        let probs = StateVector::from_circuit(&with_basis).probabilities();
        let estimated = expectation_from_probabilities(transformed, &probs);
        assert!(
            (exact - estimated).abs() < 1e-9,
            "basis-rotated estimate {estimated} differs from exact {exact}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Extraction preserves the unitary for random rotation programs, for all
    /// four combinations of the recursion/reordering switches.
    #[test]
    fn extraction_preserves_unitary(
        program in rotation_strategy(4, 7),
        recursive in any::<bool>(),
        reorder in any::<bool>(),
    ) {
        let config = ExtractionConfig {
            recursive_tree: recursive,
            reorder_commuting: reorder,
            lookahead_depth: 8,
        };
        let result = extract_clifford(&program, &config);
        let reference = StateVector::from_circuit(&naive_reference(&program, 4));
        let full = StateVector::from_circuit(&result.full_circuit());
        prop_assert!(
            full.approx_eq_up_to_phase(&reference, 1e-8),
            "extraction changed the unitary (recursive={recursive}, reorder={reorder})"
        );
    }

    /// The full pipeline (extraction + peephole) preserves the unitary and
    /// observable expectations.
    #[test]
    fn pipeline_preserves_observables(program in rotation_strategy(4, 6)) {
        let result = compile(&program, &QuClearConfig::default());
        let reference = StateVector::from_circuit(&naive_reference(&program, 4));
        let optimized_state = StateVector::from_circuit(&result.optimized);

        let observables: Vec<SignedPauli> =
            vec!["ZIII".parse().unwrap(), "XXII".parse().unwrap(), "ZYXZ".parse().unwrap()];
        let absorption = result.absorb_observables(&observables);
        for (i, obs) in observables.iter().enumerate() {
            let direct = reference.expectation_signed(obs);
            let measured = optimized_state.expectation(absorption.transformed()[i].pauli());
            let recovered = absorption.original_expectation(i, measured);
            prop_assert!((direct - recovered).abs() < 1e-8,
                "observable {} mismatch: {} vs {}", obs, direct, recovered);
        }
    }

    /// Structural invariants: the optimized circuit carries at most one Rz
    /// per input rotation and the extracted part is always pure Clifford.
    #[test]
    fn structural_invariants(program in rotation_strategy(5, 8)) {
        let result = extract_clifford(&program, &ExtractionConfig::default());
        let rz_count = result
            .optimized
            .gates()
            .iter()
            .filter(|g| matches!(g, quclear_circuit::Gate::Rz { .. }))
            .count();
        prop_assert!(rz_count <= program.len());
        prop_assert!(result.extracted.is_clifford());
        // The Heisenberg tableau always matches the extracted circuit.
        prop_assert_eq!(
            result.heisenberg,
            quclear_tableau::CliffordTableau::heisenberg_from_circuit(&result.extracted)
        );
    }
}

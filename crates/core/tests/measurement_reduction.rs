//! Property tests for the measurement-reduction pipeline: on random
//! commuting-closed observable sets (random Z-diagonal strings conjugated by
//! a random Clifford), the synthesized group diagonalizer must map every
//! member to a signed Z-diagonal Pauli. The tracked frame sign is
//! cross-checked against [`CliffordTableau`] conjugation, the shot-level
//! parity readout against a scalar oracle bit-for-bit, and the conjugation
//! identity `⟨ψ|P|ψ⟩ = ⟨Dψ|DPD†|Dψ⟩` against exact [`StateVector`]
//! expectations to 1e-9.

use proptest::prelude::*;
use quclear_circuit::Circuit;
use quclear_core::{diagonalize_commuting_frame, MeasurementPlan, ShotBatch};
use quclear_pauli::{PauliFrame, PauliOp, PauliString, SignedPauli};
use quclear_sim::StateVector;
use quclear_tableau::{random_clifford_circuit, CliffordTableau};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds a mutually commuting signed-Pauli set on `n` qubits: Z-diagonal
/// strings from the given masks/signs, conjugated through a seeded random
/// Clifford. Conjugation preserves commutation, so the set stays
/// commuting-closed while gaining X/Y support.
fn commuting_set(n: usize, masks: &[u64], signs: u64, clifford_seed: u64) -> Vec<SignedPauli> {
    let mut rng = StdRng::seed_from_u64(clifford_seed);
    let clifford = random_clifford_circuit(n, 3 * n, &mut rng);
    let tableau = CliffordTableau::from_circuit(&clifford);
    masks
        .iter()
        .enumerate()
        .map(|(i, &mask)| {
            let mut pauli = PauliString::identity(n);
            for q in 0..n {
                if (mask >> q) & 1 == 1 {
                    pauli.set_op(q, PauliOp::Z);
                }
            }
            tableau.apply_signed(&SignedPauli::new(pauli, (signs >> i) & 1 == 1))
        })
        .collect()
}

fn is_z_diagonal(p: &SignedPauli) -> bool {
    (0..p.num_qubits()).all(|q| matches!(p.pauli().op(q), PauliOp::I | PauliOp::Z))
}

/// A non-stabilizer test state: seeded Clifford layer, a ladder of Rz
/// rotations, then a second Clifford layer.
fn prep_circuit(n: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut circuit = random_clifford_circuit(n, 2 * n, &mut rng);
    for q in 0..n {
        circuit.rz(q, 0.3 + 0.41 * q as f64 + (seed % 7) as f64 * 0.13);
    }
    circuit.extend(
        random_clifford_circuit(n, 2 * n, &mut rng)
            .gates()
            .iter()
            .copied(),
    );
    circuit
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every member of a commuting set diagonalizes to a signed Z-diagonal
    /// Pauli, and the frame-tracked sign agrees with conjugating the member
    /// through the synthesized circuit via the independent tableau path.
    #[test]
    fn diagonalizer_rows_are_signed_z_and_match_tableau(
        n in 2usize..=5,
        masks in prop::collection::vec(1u64..64, 1..=6),
        signs in any::<u64>(),
        clifford_seed in any::<u64>(),
    ) {
        let masks: Vec<u64> = masks.iter().map(|m| m % (1 << n)).collect();
        let members = commuting_set(n, &masks, signs, clifford_seed);
        let frame = PauliFrame::from_signed(n, &members);
        let diag = diagonalize_commuting_frame(&frame);
        let tableau = CliffordTableau::from_circuit(diag.circuit());
        for (i, member) in members.iter().enumerate() {
            let row = diag.diagonal_pauli(i);
            prop_assert!(is_z_diagonal(&row), "row {i} not Z-diagonal: {row}");
            prop_assert!(row == tableau.apply_signed(member), "row {i}");
        }
    }

    /// The conjugation identity on exact statevectors: for every member,
    /// `⟨ψ|P_i|ψ⟩` equals the expectation of the diagonalized row on the
    /// rotated state `D|ψ⟩`, to 1e-9 — and equally for the full
    /// [`MeasurementPlan`] over the greedy groups.
    #[test]
    fn statevector_expectations_survive_diagonalization(
        n in 2usize..=5,
        masks in prop::collection::vec(1u64..64, 1..=6),
        signs in any::<u64>(),
        clifford_seed in any::<u64>(),
        prep_seed in any::<u64>(),
    ) {
        let masks: Vec<u64> = masks.iter().map(|m| m % (1 << n)).collect();
        let members = commuting_set(n, &masks, signs, clifford_seed);
        let frame = PauliFrame::from_signed(n, &members);
        let psi = StateVector::from_circuit(&prep_circuit(n, prep_seed));

        let diag = diagonalize_commuting_frame(&frame);
        let mut rotated = psi.clone();
        rotated.apply_circuit(diag.circuit());
        for (i, member) in members.iter().enumerate() {
            let direct = psi.expectation_signed(member);
            let via_diagonal = rotated.expectation_signed(&diag.diagonal_pauli(i));
            prop_assert!(
                (direct - via_diagonal).abs() < 1e-9,
                "member {}: {} vs {}", i, direct, via_diagonal
            );
        }

        let plan = MeasurementPlan::from_frame(&frame);
        for group in plan.groups() {
            let mut grouped = psi.clone();
            grouped.apply_circuit(group.diagonalizer().circuit());
            for (slot, &member) in group.members().iter().enumerate() {
                let direct = psi.expectation_signed(&members[member]);
                let via_plan =
                    grouped.expectation_signed(&group.diagonalizer().diagonal_pauli(slot));
                prop_assert!(
                    (direct - via_plan).abs() < 1e-9,
                    "planned member {}: {} vs {}", member, direct, via_plan
                );
            }
        }
    }

    /// Shot-level scalar oracle: on an arbitrary packed batch (including
    /// non-×64 shot counts), the plane-kernel expectations equal the naive
    /// per-shot sign·(-1)^popcount loop bit-for-bit, and the composed affine
    /// outcome planes carry exactly the same bits.
    #[test]
    fn plane_readout_matches_scalar_oracle(
        n in 2usize..=5,
        masks in prop::collection::vec(1u64..64, 1..=6),
        signs in any::<u64>(),
        clifford_seed in any::<u64>(),
        raw_shots in prop::collection::vec(any::<u64>(), 1..=150),
    ) {
        let masks: Vec<u64> = masks.iter().map(|m| m % (1 << n)).collect();
        let members = commuting_set(n, &masks, signs, clifford_seed);
        let diag = diagonalize_commuting_frame(&PauliFrame::from_signed(n, &members));
        let indices: Vec<u64> = raw_shots.iter().map(|s| s % (1 << n)).collect();
        let batch = ShotBatch::from_indices(n, &indices);

        let fast = diag.expectations(&batch);
        let planes = diag.outcome_planes(&batch);
        for i in 0..diag.len() {
            let mask: u64 = (0..n)
                .filter(|&q| diag.z_support(i).get(q))
                .map(|q| 1u64 << q)
                .sum();
            let parity_sum: i64 = indices
                .iter()
                .map(|&shot| if (shot & mask).count_ones().is_multiple_of(2) { 1 } else { -1 })
                .sum();
            let oracle = diag.sign(i) * parity_sum as f64 / indices.len() as f64;
            prop_assert!(fast[i].to_bits() == oracle.to_bits(), "member {i}");
            for (s, &shot) in indices.iter().enumerate() {
                let bit = ((shot & mask).count_ones() % 2 == 1) ^ (diag.sign(i) < 0.0);
                prop_assert!(planes[i].get(s) == bit, "member {i} shot {s}");
            }
        }
    }
}

/// Deterministic spot-check: a seeded sampled batch on a diagonalized state
/// reproduces exact statevector expectations within a 6-sigma sampling bound.
#[test]
fn sampled_estimates_converge_to_statevector() {
    let n = 4;
    let members = commuting_set(n, &[0b0011, 0b0110, 0b1100, 0b0101], 0b0100, 11);
    let frame = PauliFrame::from_signed(n, &members);
    let plan = MeasurementPlan::from_frame(&frame);
    assert!(plan.shot_budget_divisor() > 1.0);

    let psi = StateVector::from_circuit(&prep_circuit(n, 3));
    let shots = 40_000;
    let batches: Vec<ShotBatch> = plan
        .groups()
        .iter()
        .enumerate()
        .map(|(g, group)| {
            let mut rotated = psi.clone();
            rotated.apply_circuit(group.diagonalizer().circuit());
            let mut rng = StdRng::seed_from_u64(1000 + g as u64);
            ShotBatch::from_indices(n, &rotated.sample_indices(shots, &mut rng))
        })
        .collect();
    let estimates = plan.estimate(&batches);
    let bound = 6.0 / (shots as f64).sqrt();
    for (i, member) in members.iter().enumerate() {
        let exact = psi.expectation_signed(member);
        assert!(
            (estimates[i] - exact).abs() < bound,
            "member {i}: sampled {} vs exact {exact} (bound {bound})",
            estimates[i]
        );
    }
}

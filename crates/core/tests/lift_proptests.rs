//! Property tests for the lift pass: on random circuits, the lifted
//! rotation program followed by the trailing Clifford must implement the
//! input circuit's unitary, and the full
//! `lift(from_qasm(to_qasm(compile(p))))` loop must be simulator-equivalent
//! to the original rotation program.

use proptest::prelude::*;
use quclear_circuit::qasm::{from_qasm, to_qasm};
use quclear_circuit::{Circuit, Gate};
use quclear_core::{compile, lift, QuClearConfig};
use quclear_pauli::{PauliOp, PauliRotation, PauliString};
use quclear_sim::StateVector;
use quclear_tableau::CliffordTableau;

const NUM_QUBITS: usize = 4;

/// Decodes one random word into a gate, covering the whole gate set.
fn decode_gate(word: u64) -> Gate {
    let q = (word % NUM_QUBITS as u64) as usize;
    let other = ((word >> 8) % (NUM_QUBITS as u64 - 1)) as usize;
    let p = if other >= q { other + 1 } else { other };
    let angle = ((word >> 16) % 10_000) as f64 * 3.1e-4 - 1.55;
    match (word >> 32) % 14 {
        0 => Gate::H(q),
        1 => Gate::S(q),
        2 => Gate::Sdg(q),
        3 => Gate::X(q),
        4 => Gate::Y(q),
        5 => Gate::Z(q),
        6 => Gate::SqrtX(q),
        7 => Gate::SqrtXdg(q),
        8 => Gate::Rz { qubit: q, angle },
        9 => Gate::Rx { qubit: q, angle },
        10 => Gate::Ry { qubit: q, angle },
        11 => Gate::Cx {
            control: q,
            target: p,
        },
        12 => Gate::Cz { a: q, b: p },
        _ => Gate::Swap { a: q, b: p },
    }
}

fn random_circuit(words: &[u64]) -> Circuit {
    Circuit::from_gates(NUM_QUBITS, words.iter().map(|&w| decode_gate(w)).collect())
}

/// Decodes one random word into a rotation on `NUM_QUBITS` qubits (identity
/// axes allowed: the loop must tolerate trivial rotations).
fn decode_rotation(word: u64) -> PauliRotation {
    let mut pauli = PauliString::identity(NUM_QUBITS);
    for q in 0..NUM_QUBITS {
        let op = match (word >> (2 * q)) & 3 {
            0 => PauliOp::I,
            1 => PauliOp::X,
            2 => PauliOp::Y,
            _ => PauliOp::Z,
        };
        pauli.set_op(q, op);
    }
    let angle = ((word >> 16) % 10_000) as f64 * 2.9e-4 - 1.45;
    PauliRotation::new(pauli, angle)
}

/// Simulates the lifted program: rotations (exact Pauli exponentials), then
/// the trailing Clifford circuit.
fn simulate_lifted(lifted: &quclear_core::LiftedProgram) -> StateVector {
    let mut state = StateVector::zero_state(lifted.num_qubits());
    state.apply_rotations(&lifted.rotations);
    state.apply_circuit(lifted.trailing_circuit());
    state
}

proptest! {
    /// `circuit ≡ rotations then trailing` as unitaries, checked on |0…0⟩
    /// and on a basis-scrambling prefix state.
    #[test]
    fn lift_preserves_the_circuit_unitary(words in prop::collection::vec(any::<u64>(), 0..40)) {
        let circuit = random_circuit(&words);
        let lifted = lift(&circuit);

        let direct = StateVector::from_circuit(&circuit);
        let via_lift = simulate_lifted(&lifted);
        prop_assert!(
            direct.approx_eq_up_to_phase(&via_lift, 1e-9),
            "lifted program diverges from the circuit"
        );

        // The trailing tableau and circuit must agree, and the Heisenberg
        // accessor must be its inverse map.
        prop_assert_eq!(
            &lifted.trailing_clifford,
            &CliffordTableau::from_circuit(lifted.trailing_circuit())
        );
        prop_assert_eq!(
            lifted.heisenberg(),
            &lifted.trailing_clifford.inverse()
        );
    }

    /// The issue's loop: compile a random rotation program, export the full
    /// optimized circuit to QASM, parse it back, lift it — the lifted
    /// program must be simulator-equivalent to the original program.
    #[test]
    fn lift_of_exported_compilation_matches_the_program(
        words in prop::collection::vec(any::<u64>(), 1..10),
    ) {
        let program: Vec<PauliRotation> = words.iter().map(|&w| decode_rotation(w)).collect();
        let compiled = compile(&program, &QuClearConfig::default());
        let text = to_qasm(&compiled.full_circuit());
        let lifted = lift(&from_qasm(&text).expect("exported QASM must parse"));

        let mut reference = StateVector::zero_state(NUM_QUBITS);
        reference.apply_rotations(&program);
        let via_loop = simulate_lifted(&lifted);
        prop_assert!(
            reference.approx_eq_up_to_phase(&via_loop, 1e-9),
            "QASM loop diverges from the original rotation program"
        );
    }

    /// Re-binding a lifted structure to fresh angles matches lifting the
    /// re-angled circuit directly.
    #[test]
    fn rebound_angles_match_a_fresh_lift(words in prop::collection::vec(any::<u64>(), 1..30)) {
        let circuit = random_circuit(&words);
        let lifted = lift(&circuit);
        let doubled: Vec<f64> = lifted.native_angles().iter().map(|a| 2.0 * a).collect();
        let rebound = lifted.rotations_with_angles(&doubled);

        let regauged = Circuit::from_gates(
            NUM_QUBITS,
            circuit
                .gates()
                .iter()
                .map(|g| match *g {
                    Gate::Rz { qubit, angle } => Gate::Rz { qubit, angle: 2.0 * angle },
                    Gate::Rx { qubit, angle } => Gate::Rx { qubit, angle: 2.0 * angle },
                    Gate::Ry { qubit, angle } => Gate::Ry { qubit, angle: 2.0 * angle },
                    g => g,
                })
                .collect(),
        );
        let fresh = lift(&regauged);
        prop_assert_eq!(rebound, fresh.rotations);
    }
}

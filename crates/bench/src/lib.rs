//! Shared harness code for regenerating the paper's tables and figures.
//!
//! Each table/figure of the QuCLEAR paper has a dedicated binary in
//! `src/bin/` (see DESIGN.md §3 for the index); this library provides the
//! pieces they share: compiling a benchmark with every method, timing,
//! pretty-printing aligned tables and writing machine-readable JSON into
//! `results/`.

#![warn(missing_docs)]

use std::fs;
use std::path::PathBuf;
use std::time::Instant;

use quclear_baselines::Method;
use quclear_circuit::Circuit;
use quclear_pauli::PauliRotation;
use quclear_workloads::Benchmark;
use serde::Serialize;

/// The metrics reported for one (benchmark, method) cell of Table III.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct MethodResult {
    /// CNOT gate count (SWAPs count as three).
    pub cnot_count: usize,
    /// Entangling (CNOT) depth.
    pub entangling_depth: usize,
    /// Single-qubit gate count.
    pub single_qubit_count: usize,
    /// Compile time in seconds.
    pub compile_time_s: f64,
}

impl MethodResult {
    /// Measures a compiled circuit together with its compile time.
    #[must_use]
    pub fn from_circuit(circuit: &Circuit, compile_time_s: f64) -> Self {
        MethodResult {
            cnot_count: circuit.cnot_count(),
            entangling_depth: circuit.entangling_depth(),
            single_qubit_count: circuit.single_qubit_count(),
            compile_time_s,
        }
    }
}

/// Compiles a rotation program with a method, measuring wall-clock time.
#[must_use]
pub fn evaluate_method(method: Method, rotations: &[PauliRotation]) -> (Circuit, MethodResult) {
    let start = Instant::now();
    let circuit = method.compile(rotations);
    let elapsed = start.elapsed().as_secs_f64();
    let result = MethodResult::from_circuit(&circuit, elapsed);
    (circuit, result)
}

/// Returns the benchmark suite selected by the command line: `--small` skips
/// the two largest UCCSD instances, `--tiny` keeps only the quick ones.
#[must_use]
pub fn suite_from_args() -> Vec<Benchmark> {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--tiny") {
        Benchmark::all()
            .into_iter()
            .filter(|b| b.rotations().len() <= 400)
            .collect()
    } else if args.iter().any(|a| a == "--small") {
        Benchmark::small_suite()
    } else {
        Benchmark::all()
    }
}

/// The directory experiment outputs are written to (`results/` at the
/// workspace root), created on demand.
#[must_use]
pub fn results_dir() -> PathBuf {
    let dir = workspace_root().join("results");
    fs::create_dir_all(&dir).expect("failed to create results directory");
    dir
}

/// Best-effort workspace root: the directory containing `Cargo.toml` with a
/// `[workspace]` table, falling back to the current directory.
#[must_use]
pub fn workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.exists() {
            if let Ok(contents) = fs::read_to_string(&manifest) {
                if contents.contains("[workspace]") {
                    return dir;
                }
            }
        }
        if !dir.pop() {
            return std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        }
    }
}

/// Serializes `value` as pretty JSON into `results/<name>.json`.
pub fn save_json<T: Serialize>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialization failed");
    fs::write(&path, json).expect("failed to write results file");
    println!("\nwrote {}", path.display());
}

/// A minimal fixed-width table printer for the harness binaries.
#[derive(Debug, Default)]
pub struct TablePrinter {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TablePrinter {
    /// Creates a printer with the given column headers.
    #[must_use]
    pub fn new(headers: &[&str]) -> Self {
        TablePrinter {
            headers: headers.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds a row (stringified cells).
    pub fn add_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Prints the table with aligned columns.
    pub fn print(&self) {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let line = |cells: &[String]| {
            let mut out = String::new();
            for (i, cell) in cells.iter().enumerate().take(cols) {
                out.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
            }
            println!("{}", out.trim_end());
        };
        line(&self.headers);
        println!(
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            line(row);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluate_method_produces_consistent_metrics() {
        let program = Benchmark::Ucc(2, 4).rotations();
        let (circuit, result) = evaluate_method(Method::QuClear, &program);
        assert_eq!(result.cnot_count, circuit.cnot_count());
        assert!(result.compile_time_s >= 0.0);
    }

    #[test]
    fn workspace_root_contains_workspace_manifest() {
        let root = workspace_root();
        let manifest = std::fs::read_to_string(root.join("Cargo.toml")).unwrap();
        assert!(manifest.contains("[workspace]"));
    }

    #[test]
    fn table_printer_does_not_panic() {
        let mut t = TablePrinter::new(&["a", "b"]);
        t.add_row(vec!["1".into(), "2".into()]);
        t.print();
    }
}

//! Regenerates Table IV: Clifford-Absorption runtime versus the number of
//! observables (UCC-style workload) and the number of measured states
//! (MaxCut-style workload).
//!
//! Run with `cargo run -p quclear-bench --release --bin table4`
//! (add `--small` to use UCC-(4,8) instead of UCC-(10,20)).

use std::collections::BTreeMap;
use std::time::Instant;

use quclear_bench::{save_json, TablePrinter};
use quclear_core::{compile, QuClearConfig};
use quclear_pauli::{PauliOp, PauliString, SignedPauli};
use quclear_workloads::Benchmark;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    count: usize,
    observable_absorption_s: f64,
    state_post_processing_s: f64,
}

fn random_observables(n: usize, count: usize, rng: &mut StdRng) -> Vec<SignedPauli> {
    (0..count)
        .map(|_| {
            let ops: Vec<PauliOp> = (0..n)
                .map(|_| match rng.gen_range(0..4) {
                    0 => PauliOp::I,
                    1 => PauliOp::X,
                    2 => PauliOp::Y,
                    _ => PauliOp::Z,
                })
                .collect();
            SignedPauli::positive(PauliString::from_ops(&ops))
        })
        .collect()
}

fn main() {
    let small = std::env::args().any(|a| a == "--small" || a == "--tiny");
    let chem = if small {
        Benchmark::Ucc(4, 8)
    } else {
        Benchmark::Ucc(10, 20)
    };
    let maxcut = Benchmark::MaxCutRegular { n: 20, degree: 12 };

    eprintln!("compiling {} for the observable benchmark…", chem.name());
    let chem_result = compile(&chem.rotations(), &QuClearConfig::default());
    eprintln!("compiling {} for the state benchmark…", maxcut.name());
    let maxcut_result = compile(&maxcut.rotations(), &QuClearConfig::default());
    let absorber = maxcut_result
        .probability_absorber()
        .expect("QAOA extracted Clifford must be probability-absorbable");

    let mut rng = StdRng::seed_from_u64(0xAB50);
    let counts = [10usize, 50, 100, 500, 1000, 5000];
    let mut rows = Vec::new();
    let n_chem = chem.num_qubits();
    let n_cut = maxcut.num_qubits();

    for &count in &counts {
        // Observable absorption runtime (CA-Pre for VQE workloads).
        let observables = random_observables(n_chem, count, &mut rng);
        let start = Instant::now();
        let absorption = chem_result.absorb_observables(&observables);
        let observable_time = start.elapsed().as_secs_f64();
        assert_eq!(absorption.transformed().len(), count);

        // Measured-state post-processing runtime (CA-Post for QAOA workloads).
        let mut measured: BTreeMap<usize, u64> = BTreeMap::new();
        while measured.len() < count {
            let state = rng.gen_range(0..(1usize << n_cut));
            *measured.entry(state).or_insert(0) += 1;
        }
        let start = Instant::now();
        let post = absorber.post_process_counts(&measured);
        let state_time = start.elapsed().as_secs_f64();
        assert_eq!(post.values().sum::<u64>(), measured.values().sum::<u64>());

        rows.push(Row {
            count,
            observable_absorption_s: observable_time,
            state_post_processing_s: state_time,
        });
    }

    println!(
        "Table IV: Clifford Absorption runtime (s) for {} observables and {} states\n",
        chem.name(),
        maxcut.name()
    );
    let mut table = TablePrinter::new(&["Number", "Observables (s)", "States (s)"]);
    for row in &rows {
        table.add_row(vec![
            row.count.to_string(),
            format!("{:.4}", row.observable_absorption_s),
            format!("{:.4}", row.state_post_processing_s),
        ]);
    }
    table.print();
    save_json("table4", &rows);
}

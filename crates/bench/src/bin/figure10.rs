//! Regenerates Figure 10: CNOT-count breakdown of the individual QuCLEAR
//! features on UCC-(4,8) and MaxCut-(n20, r8).
//!
//! The stages mirror the paper: native synthesis → recursive-tree Clifford
//! extraction (terminal Clifford still counted) → + commuting-block
//! reordering → + Clifford absorption (terminal Clifford removed) → + local
//! ("Qiskit") optimization.
//!
//! Run with `cargo run -p quclear-bench --release --bin figure10`.

use quclear_bench::{save_json, TablePrinter};
use quclear_circuit::optimize;
use quclear_core::{extract_clifford, ExtractionConfig};
use quclear_pauli::PauliRotation;
use quclear_workloads::Benchmark;
use serde::Serialize;

#[derive(Serialize)]
struct Breakdown {
    benchmark: String,
    native: usize,
    extraction_recursive_tree: usize,
    plus_commuting_blocks: usize,
    plus_absorption: usize,
    plus_local_optimization: usize,
}

fn breakdown(bench: &Benchmark) -> Breakdown {
    let rotations = bench.rotations();
    let native: usize = rotations.iter().map(PauliRotation::native_cnot_cost).sum();

    // Stage 2: recursive-tree extraction, no reordering; the extracted
    // Clifford is still part of the circuit (not yet absorbed).
    let no_reorder = extract_clifford(
        &rotations,
        &ExtractionConfig {
            recursive_tree: true,
            reorder_commuting: false,
            ..ExtractionConfig::default()
        },
    );
    let extraction_only = no_reorder.full_circuit().cnot_count();

    // Stage 3: + commuting-block reordering (Clifford still counted).
    let with_reorder = extract_clifford(&rotations, &ExtractionConfig::default());
    let with_commuting = with_reorder.full_circuit().cnot_count();

    // Stage 4: + absorption — only the optimized circuit runs on hardware.
    let absorbed = with_reorder.optimized.cnot_count();

    // Stage 5: + local peephole optimization.
    let local = optimize(&with_reorder.optimized).cnot_count();

    Breakdown {
        benchmark: bench.name(),
        native,
        extraction_recursive_tree: extraction_only,
        plus_commuting_blocks: with_commuting,
        plus_absorption: absorbed,
        plus_local_optimization: local,
    }
}

fn main() {
    let benches = [
        Benchmark::Ucc(4, 8),
        Benchmark::MaxCutRegular { n: 20, degree: 8 },
    ];
    let rows: Vec<Breakdown> = benches.iter().map(breakdown).collect();

    println!("Figure 10: CNOT count after each optimization feature\n");
    let mut table = TablePrinter::new(&[
        "Benchmark",
        "native",
        "+CE (recursive tree)",
        "+commuting blocks",
        "+absorption",
        "+local opt",
    ]);
    for row in &rows {
        table.add_row(vec![
            row.benchmark.clone(),
            row.native.to_string(),
            row.extraction_recursive_tree.to_string(),
            row.plus_commuting_blocks.to_string(),
            row.plus_absorption.to_string(),
            row.plus_local_optimization.to_string(),
        ]);
    }
    table.print();
    println!("\n(paper, UCC-(4,8):        2624 → 1014 → 984 → ~half → 448)");
    println!("(paper, MaxCut-(n20,r8):  320  → 286  → 258 → 129 → 129)");
    save_json("figure10", &rows);
}

//! Regenerates Figure 11: CNOT counts after mapping the compiled circuits to
//! devices with limited connectivity (a Sycamore-like 2-D grid and an IBM
//! Manhattan-like heavy-hex lattice).
//!
//! Run with `cargo run -p quclear-bench --release --bin figure11`
//! (add `--small` to replace UCC-(10,20) with UCC-(6,12)).

use std::collections::BTreeMap;

use quclear_baselines::Method;
use quclear_bench::{save_json, TablePrinter};
use quclear_circuit::{route, CouplingMap};
use quclear_workloads::Benchmark;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    benchmark: String,
    device: String,
    /// Post-routing CNOT count per method (SWAPs count as three CNOTs).
    routed_cnot: BTreeMap<String, usize>,
}

fn main() {
    let small = std::env::args().any(|a| a == "--small" || a == "--tiny");
    let chem = if small {
        Benchmark::Ucc(6, 12)
    } else {
        Benchmark::Ucc(10, 20)
    };
    let benches = [
        chem,
        Benchmark::Molecule(quclear_workloads::Molecule::Benzene),
        Benchmark::Labs(20),
        Benchmark::MaxCutRegular { n: 20, degree: 12 },
    ];
    let devices = [
        ("Sycamore-like grid", CouplingMap::sycamore_like()),
        ("Manhattan-like heavy-hex", CouplingMap::heavy_hex_65()),
    ];
    // Tetris is hardware-aware Paulihedral; in this reproduction it is folded
    // into PH + routing (see DESIGN.md), so the compared methods are the
    // remaining four columns of Figure 11.
    let methods = [
        Method::QiskitLike,
        Method::TketLike,
        Method::PaulihedralLike,
        Method::QuClear,
    ];

    let mut rows = Vec::new();
    for bench in &benches {
        let rotations = bench.rotations();
        eprintln!(
            "compiling {} ({} Pauli strings)…",
            bench.name(),
            rotations.len()
        );
        let compiled: Vec<(Method, quclear_circuit::Circuit)> = methods
            .iter()
            .map(|m| (*m, m.compile(&rotations)))
            .collect();
        for (device_name, coupling) in &devices {
            let mut routed_cnot = BTreeMap::new();
            for (method, circuit) in &compiled {
                let result = route(circuit, coupling);
                routed_cnot.insert(method.name().to_string(), result.circuit.cnot_count());
            }
            rows.push(Row {
                benchmark: bench.name(),
                device: (*device_name).to_string(),
                routed_cnot,
            });
        }
    }

    for (device_name, _) in &devices {
        println!("\nFigure 11 — mapping to {device_name}\n");
        let mut headers = vec!["Name"];
        let method_names: Vec<&str> = methods.iter().map(Method::name).collect();
        headers.extend(method_names.iter().copied());
        let mut table = TablePrinter::new(&headers);
        for row in rows.iter().filter(|r| r.device == **device_name) {
            let mut cells = vec![row.benchmark.clone()];
            for name in &method_names {
                cells.push(row.routed_cnot[*name].to_string());
            }
            table.add_row(cells);
        }
        table.print();
    }
    save_json("figure11", &rows);
}

//! Regenerates Figure 9: QuCLEAR with and without the local ("Qiskit")
//! peephole optimization — CNOT counts and compile times.
//!
//! Run with `cargo run -p quclear-bench --release --bin figure9`
//! (add `--small` / `--tiny` to shrink the suite).

use std::time::Instant;

use quclear_bench::{save_json, suite_from_args, TablePrinter};
use quclear_core::{compile, QuClearConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    benchmark: String,
    cnot_without_peephole: usize,
    cnot_with_peephole: usize,
    time_without_peephole_s: f64,
    time_with_peephole_s: f64,
}

fn main() {
    let mut rows = Vec::new();
    for bench in suite_from_args() {
        let rotations = bench.rotations();
        eprintln!("compiling {}…", bench.name());

        let start = Instant::now();
        let without = compile(&rotations, &QuClearConfig::without_peephole());
        let time_without = start.elapsed().as_secs_f64();

        let start = Instant::now();
        let with = compile(&rotations, &QuClearConfig::full());
        let time_with = start.elapsed().as_secs_f64();

        rows.push(Row {
            benchmark: bench.name(),
            cnot_without_peephole: without.cnot_count(),
            cnot_with_peephole: with.cnot_count(),
            time_without_peephole_s: time_without,
            time_with_peephole_s: time_with,
        });
    }

    println!("Figure 9: QuCLEAR with vs without the local optimization pass\n");
    let mut table = TablePrinter::new(&[
        "Name",
        "CNOT (QuCLEAR only)",
        "CNOT (+local opt)",
        "time (s, QuCLEAR only)",
        "time (s, +local opt)",
    ]);
    let mut ratio_product = 1.0f64;
    let mut count = 0usize;
    for row in &rows {
        table.add_row(vec![
            row.benchmark.clone(),
            row.cnot_without_peephole.to_string(),
            row.cnot_with_peephole.to_string(),
            format!("{:.4}", row.time_without_peephole_s),
            format!("{:.4}", row.time_with_peephole_s),
        ]);
        if row.cnot_without_peephole > 0 {
            ratio_product *= row.cnot_with_peephole as f64 / row.cnot_without_peephole as f64;
            count += 1;
        }
    }
    table.print();
    if count > 0 {
        println!(
            "\naverage CNOT reduction from the local pass: {:.1}% (paper reports ~4.4%)",
            100.0 * (1.0 - ratio_product.powf(1.0 / count as f64))
        );
    }
    save_json("figure9", &rows);
}

//! Regenerates Table III: CNOT count, entangling depth and compile time for
//! QuCLEAR and the baselines on a fully connected device.
//!
//! Run with `cargo run -p quclear-bench --release --bin table3`
//! (add `--small` to skip UCC-(8,16)/UCC-(10,20), `--tiny` for a quick pass).

use std::collections::BTreeMap;

use quclear_baselines::Method;
use quclear_bench::{evaluate_method, save_json, suite_from_args, MethodResult, TablePrinter};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    benchmark: String,
    results: BTreeMap<String, MethodResult>,
}

fn main() {
    let suite = suite_from_args();
    let mut rows: Vec<Row> = Vec::new();

    for bench in &suite {
        let rotations = bench.rotations();
        eprintln!(
            "compiling {} ({} Pauli strings)…",
            bench.name(),
            rotations.len()
        );
        let mut results = BTreeMap::new();
        for method in Method::ALL {
            let (_circuit, result) = evaluate_method(method, &rotations);
            results.insert(method.name().to_string(), result);
        }
        rows.push(Row {
            benchmark: bench.name(),
            results,
        });
    }

    let methods: Vec<&str> = Method::ALL.iter().map(Method::name).collect();

    for (title, metric) in [
        ("CNOT gate count", 0usize),
        ("Entangling depth", 1),
        ("Compile time (s)", 2),
    ] {
        println!("\nTable III — {title}\n");
        let mut headers = vec!["Name"];
        headers.extend(methods.iter().copied());
        let mut table = TablePrinter::new(&headers);
        for row in &rows {
            let mut cells = vec![row.benchmark.clone()];
            for method in &methods {
                let r = &row.results[*method];
                cells.push(match metric {
                    0 => r.cnot_count.to_string(),
                    1 => r.entangling_depth.to_string(),
                    _ => format!("{:.4}", r.compile_time_s),
                });
            }
            table.add_row(cells);
        }
        table.print();
    }

    // Geometric-mean improvements of QuCLEAR over each baseline (the paper's
    // summary statistics).
    println!("\nGeometric-mean reduction of QuCLEAR vs baselines:");
    for baseline in ["Qiskit", "Rustiq", "PH", "tket"] {
        let mut cnot_ratio = 1.0f64;
        let mut depth_ratio = 1.0f64;
        let mut count = 0usize;
        for row in &rows {
            let q = &row.results["QuCLEAR"];
            let b = &row.results[baseline];
            if b.cnot_count > 0 && b.entangling_depth > 0 {
                cnot_ratio *= q.cnot_count as f64 / b.cnot_count as f64;
                depth_ratio *= q.entangling_depth as f64 / b.entangling_depth as f64;
                count += 1;
            }
        }
        if count > 0 {
            let gm_cnot = 1.0 - cnot_ratio.powf(1.0 / count as f64);
            let gm_depth = 1.0 - depth_ratio.powf(1.0 / count as f64);
            println!(
                "  vs {baseline:<7} CNOT reduction {:>5.1}%   depth reduction {:>5.1}%",
                100.0 * gm_cnot,
                100.0 * gm_depth
            );
        }
    }

    save_json("table3", &rows);
}

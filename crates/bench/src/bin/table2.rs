//! Regenerates Table II: benchmark inventory (qubits, #Pauli, native #CNOT,
//! native #1-qubit gates).
//!
//! Run with `cargo run -p quclear-bench --release --bin table2`.

use quclear_bench::{save_json, suite_from_args, TablePrinter};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    benchmark: String,
    category: String,
    qubits: usize,
    num_pauli: usize,
    native_cnot: usize,
    native_single_qubit: usize,
}

fn main() {
    let mut table = TablePrinter::new(&["Type", "Name", "#qubits", "#Pauli", "#CNOT", "#1Q"]);
    let mut rows = Vec::new();
    for bench in suite_from_args() {
        let rotations = bench.rotations();
        let row = Row {
            benchmark: bench.name(),
            category: bench.category().name().to_string(),
            qubits: bench.num_qubits(),
            num_pauli: rotations.len(),
            native_cnot: bench.native_cnot_count(),
            native_single_qubit: bench.native_single_qubit_count(),
        };
        table.add_row(vec![
            row.category.clone(),
            row.benchmark.clone(),
            row.qubits.to_string(),
            row.num_pauli.to_string(),
            row.native_cnot.to_string(),
            row.native_single_qubit.to_string(),
        ]);
        rows.push(row);
    }
    println!("Table II: benchmark information (native, unoptimized circuits)\n");
    table.print();
    save_json("table2", &rows);
}

//! Criterion micro-benchmarks of Clifford Absorption (Table IV: runtime
//! versus number of observables / measured states).

use std::collections::BTreeMap;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use quclear_core::{compile, QuClearConfig};
use quclear_pauli::{PauliOp, PauliString, SignedPauli};
use quclear_workloads::Benchmark;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_observables(n: usize, count: usize, seed: u64) -> Vec<SignedPauli> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let ops: Vec<PauliOp> = (0..n)
                .map(|_| match rng.gen_range(0..4) {
                    0 => PauliOp::I,
                    1 => PauliOp::X,
                    2 => PauliOp::Y,
                    _ => PauliOp::Z,
                })
                .collect();
            SignedPauli::positive(PauliString::from_ops(&ops))
        })
        .collect()
}

fn bench_observable_absorption(c: &mut Criterion) {
    // UCC-(4,8) keeps the compile step short while exercising the same code
    // path as the paper's UCC-(10,20) measurement.
    let bench = Benchmark::Ucc(4, 8);
    let result = compile(&bench.rotations(), &QuClearConfig::default());
    let n = bench.num_qubits();

    let mut group = c.benchmark_group("observable_absorption");
    for count in [10usize, 100, 1000] {
        let observables = random_observables(n, count, 0xA0 + count as u64);
        group.bench_with_input(
            BenchmarkId::from_parameter(count),
            &observables,
            |b, obs| {
                b.iter(|| result.absorb_observables(obs));
            },
        );
    }
    group.finish();
}

fn bench_state_post_processing(c: &mut Criterion) {
    let bench = Benchmark::MaxCutRegular { n: 20, degree: 12 };
    let result = compile(&bench.rotations(), &QuClearConfig::default());
    let absorber = result.probability_absorber().expect("QAOA is absorbable");
    let mut rng = StdRng::seed_from_u64(7);

    let mut group = c.benchmark_group("state_post_processing");
    for count in [10usize, 100, 1000] {
        let mut counts: BTreeMap<usize, u64> = BTreeMap::new();
        while counts.len() < count {
            *counts.entry(rng.gen_range(0..1 << 20)).or_insert(0) += 1;
        }
        group.bench_with_input(BenchmarkId::from_parameter(count), &counts, |b, counts| {
            b.iter(|| absorber.post_process_counts(counts));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_observable_absorption,
    bench_state_post_processing
);
criterion_main!(benches);

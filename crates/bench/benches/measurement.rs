//! Criterion benchmarks of grouped measurement reduction: diagonalizing the
//! commuting groups of a UCC Hamiltonian-shaped observable set and reading
//! every member's expectation out of one packed shot batch per group.
//!
//! Three ids measure the pipeline against its naive baseline:
//!
//! * `measurement/diagonalize` — building a [`MeasurementPlan`] (grouping +
//!   Clifford diagonalizer synthesis + parity-block packing) from the
//!   absorbed observable frame.
//! * `measurement/grouped_planes` — the CA-Post readout: pack one batch per
//!   commuting group and estimate every observable via the plan's bit-plane
//!   parity kernels.
//! * `measurement/per_observable_scalar` — the pre-grouping baseline: one
//!   shot vector per observable, parities counted one shot at a time.
//!
//! The `grouped_vs_per_observable_smoke` assertion runs under
//! `cargo bench -p quclear-bench --bench measurement -- --test` and is wired
//! into CI: grouped estimation must agree with the scalar readout
//! bit-for-bit and must not be slower than the per-observable loop.

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use quclear_core::{MeasurementPlan, ShotBatch};
use quclear_pauli::PauliFrame;
use quclear_workloads::{vqe_expectation_sweep, Benchmark};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shots per batch (per group for the grouped path, per observable for the
/// scalar baseline).
const SHOTS: usize = 1 << 16;

/// The UCC-(4,8) Hamiltonian-shaped observable set (every single-qubit `Z`
/// plus each distinct ansatz rotation axis), as a Pauli frame plus its
/// measurement plan.
fn ucc_plan() -> (usize, PauliFrame, MeasurementPlan) {
    let sweep = vqe_expectation_sweep(&Benchmark::Ucc(4, 8), 1, 13);
    let n = sweep.observables[0].num_qubits();
    let frame = PauliFrame::from_signed(n, &sweep.observables);
    let plan = MeasurementPlan::from_frame(&frame);
    (n, frame, plan)
}

/// One random shot-index vector per batch, deterministic in `seed`.
fn random_shots(n: usize, batches: usize, seed: u64) -> Vec<Vec<u64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..batches)
        .map(|_| (0..SHOTS).map(|_| rng.gen_range(0..1u64 << n)).collect())
        .collect()
}

/// The naive per-observable readout over one group's raw indices: mask,
/// popcount, count parities one shot at a time, apply the tracked sign.
fn scalar_readout(plan: &MeasurementPlan, indices: &[Vec<u64>]) -> Vec<f64> {
    let mut out = vec![0.0; plan.num_observables()];
    for (group, shots) in plan.groups().iter().zip(indices) {
        let diagonalizer = group.diagonalizer();
        for (slot, &member) in group.members().iter().enumerate() {
            let mask: u64 = (0..plan.num_qubits())
                .filter(|&q| diagonalizer.z_support(slot).get(q))
                .map(|q| 1u64 << q)
                .sum();
            let parity_sum: i64 = shots
                .iter()
                .map(|&s| {
                    if (s & mask).count_ones().is_multiple_of(2) {
                        1
                    } else {
                        -1
                    }
                })
                .sum();
            out[member] = diagonalizer.sign(slot) * parity_sum as f64 / shots.len() as f64;
        }
    }
    out
}

fn bench_measurement(c: &mut Criterion) {
    let (n, frame, plan) = ucc_plan();
    let grouped_shots = random_shots(n, plan.num_groups(), 0xD1A6);
    let per_observable_shots = random_shots(n, plan.num_observables(), 0xD1A6);
    let batches: Vec<ShotBatch> = grouped_shots
        .iter()
        .map(|shots| ShotBatch::from_indices(n, shots))
        .collect();

    let mut group = c.benchmark_group("measurement");
    group.sample_size(20);
    group.bench_with_input(
        BenchmarkId::new("diagonalize", plan.num_observables()),
        &frame,
        |b, frame| {
            b.iter(|| MeasurementPlan::from_frame(black_box(frame)));
        },
    );
    group.bench_with_input(
        BenchmarkId::new("grouped_planes", SHOTS),
        &grouped_shots,
        |b, shots| {
            b.iter(|| {
                let batches: Vec<ShotBatch> = shots
                    .iter()
                    .map(|shots| ShotBatch::from_indices(n, shots))
                    .collect();
                plan.estimate(black_box(&batches))
            });
        },
    );
    group.bench_with_input(
        BenchmarkId::new("grouped_readout", SHOTS),
        &batches,
        |b, batches| {
            b.iter(|| plan.estimate(black_box(batches)));
        },
    );
    group.bench_with_input(
        BenchmarkId::new("per_observable_scalar", SHOTS),
        &per_observable_shots,
        |b, shots| {
            b.iter(|| {
                // One vector per observable: count every batch even though
                // the masks repeat across groups — that is the pre-grouping
                // shot budget.
                shots
                    .iter()
                    .enumerate()
                    .map(|(i, shots)| {
                        let (g, slot) = plan
                            .groups()
                            .iter()
                            .enumerate()
                            .find_map(|(g, group)| {
                                group.members().iter().position(|&m| m == i).map(|s| (g, s))
                            })
                            .expect("every observable is grouped");
                        let diagonalizer = plan.groups()[g].diagonalizer();
                        let mask: u64 = (0..n)
                            .filter(|&q| diagonalizer.z_support(slot).get(q))
                            .map(|q| 1u64 << q)
                            .sum();
                        let parity_sum: i64 = shots
                            .iter()
                            .map(|&s| {
                                if (s & mask).count_ones().is_multiple_of(2) {
                                    1
                                } else {
                                    -1
                                }
                            })
                            .sum();
                        diagonalizer.sign(slot) * parity_sum as f64 / shots.len() as f64
                    })
                    .sum::<f64>()
            });
        },
    );
    group.finish();
}

/// Noise margin for the grouped-vs-scalar smoke: grouped estimation must not
/// be slower than the per-observable loop beyond measurement jitter. The
/// grouped path does `groups` batches of plane kernels against
/// `observables` batches of scalar parity loops, so in practice it wins by
/// the shot-budget divisor times the plane-kernel speedup.
const GROUPED_SLOWDOWN_TOLERANCE: f64 = 1.10;

/// Best-of-N wall time of `f`, in nanoseconds, plus a checksum.
fn best_of<F: FnMut() -> u64>(mut f: F) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut sink = 0u64;
    for _ in 0..5 {
        let start = Instant::now();
        sink = sink.wrapping_add(f());
        best = best.min(start.elapsed().as_nanos() as f64);
    }
    (best, sink)
}

/// The acceptance smoke: on the UCC-(4,8) observable set, grouped
/// estimation (pack one batch per commuting group, bit-plane parity
/// readout) must agree bit-for-bit with the scalar per-observable readout
/// of the same batches, and must not run slower than estimating each
/// observable from its own per-observable shot vector. Runs in `--test`
/// mode too, where the criterion stand-in skips timing but this `Instant`
/// loop does not.
fn grouped_vs_per_observable_smoke(_c: &mut Criterion) {
    let (n, _, plan) = ucc_plan();
    assert!(
        plan.shot_budget_divisor() > 1.0,
        "UCC workload must actually group observables (divisor {})",
        plan.shot_budget_divisor()
    );
    let grouped_shots = random_shots(n, plan.num_groups(), 0xD1A6);
    let per_observable_shots = random_shots(n, plan.num_observables(), 0xD1A6);

    // Correctness: plane readout equals the scalar readout of the SAME
    // batches, bit for bit.
    let batches: Vec<ShotBatch> = grouped_shots
        .iter()
        .map(|shots| ShotBatch::from_indices(n, shots))
        .collect();
    let planes = plan.estimate(&batches);
    let scalar = scalar_readout(&plan, &grouped_shots);
    for (i, (a, b)) in planes.iter().zip(&scalar).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "observable {i}: planes {a} vs scalar {b}"
        );
    }

    // Wall clock: the full grouped path (pack + plane readout, one batch
    // per group) against the per-observable scalar loop (one shot vector
    // per observable).
    let (grouped_ns, grouped_sum) = best_of(|| {
        let batches: Vec<ShotBatch> = grouped_shots
            .iter()
            .map(|shots| ShotBatch::from_indices(n, black_box(shots)))
            .collect();
        plan.estimate(&batches)
            .iter()
            .map(|e| e.to_bits())
            .fold(0u64, u64::wrapping_add)
    });
    let (scalar_ns, scalar_sum) = best_of(|| {
        per_observable_shots
            .iter()
            .enumerate()
            .map(|(i, shots)| {
                let (g, slot) = plan
                    .groups()
                    .iter()
                    .enumerate()
                    .find_map(|(g, group)| {
                        group.members().iter().position(|&m| m == i).map(|s| (g, s))
                    })
                    .expect("every observable is grouped");
                let diagonalizer = plan.groups()[g].diagonalizer();
                let mask: u64 = (0..n)
                    .filter(|&q| diagonalizer.z_support(slot).get(q))
                    .map(|q| 1u64 << q)
                    .sum();
                let parity_sum: i64 = black_box(shots)
                    .iter()
                    .map(|&s| {
                        if (s & mask).count_ones().is_multiple_of(2) {
                            1
                        } else {
                            -1
                        }
                    })
                    .sum();
                (diagonalizer.sign(slot) * parity_sum as f64).to_bits()
            })
            .fold(0u64, u64::wrapping_add)
    });
    // An opaque use keeps the scalar loop from being optimized away.
    black_box(scalar_sum);
    let expected_sum = planes
        .iter()
        .map(|e| e.to_bits())
        .fold(0u64, u64::wrapping_add);
    assert_eq!(
        grouped_sum,
        expected_sum.wrapping_mul(5),
        "grouped readout drifted across smoke iterations"
    );
    let ratio = grouped_ns / scalar_ns;
    println!(
        "measurement/grouped_vs_per_observable_smoke: grouped={:.2} ms scalar={:.2} ms \
         ratio={ratio:.3} ({} observables in {} groups, shot budget divisor {:.2})",
        grouped_ns / 1e6,
        scalar_ns / 1e6,
        plan.num_observables(),
        plan.num_groups(),
        plan.shot_budget_divisor(),
    );
    assert!(
        ratio < GROUPED_SLOWDOWN_TOLERANCE,
        "grouped estimation is {ratio:.3}x the per-observable path (tolerance \
         {GROUPED_SLOWDOWN_TOLERANCE})"
    );
}

criterion_group!(benches, bench_measurement, grouped_vs_per_observable_smoke);
criterion_main!(benches);

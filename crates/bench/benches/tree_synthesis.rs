//! Criterion micro-benchmarks of the recursive CNOT-tree synthesis
//! (Algorithm 1) and the underlying tableau conjugation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use quclear_core::TreeSynthesizer;
use quclear_pauli::{PauliOp, PauliString};
use quclear_tableau::{random_clifford_circuit, CliffordTableau};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_pauli(n: usize, rng: &mut StdRng) -> PauliString {
    let ops: Vec<PauliOp> = (0..n)
        .map(|_| match rng.gen_range(0..4) {
            0 => PauliOp::I,
            1 => PauliOp::X,
            2 => PauliOp::Y,
            _ => PauliOp::Z,
        })
        .collect();
    PauliString::from_ops(&ops)
}

fn bench_tree_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_synthesis");
    for n in [8usize, 16, 32] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let lookahead: Vec<PauliString> = (0..8).map(|_| random_pauli(n, &mut rng)).collect();
        let support: Vec<usize> = (0..n).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let synth = TreeSynthesizer::new(lookahead.as_slice(), true);
            b.iter(|| synth.synthesize(&support));
        });
    }
    group.finish();
}

fn bench_tableau_conjugation(c: &mut Criterion) {
    let mut group = c.benchmark_group("tableau_conjugation");
    for n in [16usize, 32, 64] {
        let mut rng = StdRng::seed_from_u64(100 + n as u64);
        let circuit = random_clifford_circuit(n, 20 * n, &mut rng);
        let tableau = CliffordTableau::from_circuit(&circuit);
        let pauli = random_pauli(n, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| tableau.apply(&pauli));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tree_synthesis, bench_tableau_conjugation);
criterion_main!(benches);

//! Criterion micro-benchmarks comparing the compile time of QuCLEAR with the
//! baseline compilers (the compile-time columns of Table III in miniature).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use quclear_baselines::Method;
use quclear_workloads::Benchmark;

fn bench_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile_time");
    group.sample_size(10);
    for bench in [
        Benchmark::Ucc(2, 6),
        Benchmark::MaxCutRegular { n: 15, degree: 4 },
    ] {
        let rotations = bench.rotations();
        for method in Method::ALL {
            group.bench_with_input(
                BenchmarkId::new(method.name(), bench.name()),
                &rotations,
                |b, rotations| {
                    b.iter(|| method.compile(rotations));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_methods);
criterion_main!(benches);

//! Benchmarks of the `quclear-telemetry` record path and exposition.
//!
//! The instruments sit on the engine's hot paths (every bind, every cache
//! lookup, every served request), so the record path must be nearly free:
//! a histogram record is three relaxed atomic RMWs, a counter bump is one.
//! The smoke target enforces the budget — **< 100 ns per histogram
//! record** — with its own `Instant`-based loop, so the assertion also
//! runs under `cargo bench -p quclear-bench --bench telemetry -- --test`
//! (where the criterion stand-in skips timing). Record a baseline with
//! `CRITERION_JSON=... cargo bench -p quclear-bench --bench telemetry`
//! (see `BENCH_telemetry.json` at the workspace root).

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use quclear_telemetry::{Counter, Histogram, MetricsRegistry};

/// Per-record budget for the lock-free histogram, in nanoseconds.
const RECORD_BUDGET_NS: f64 = 100.0;

/// A registry populated the way a busy engine + serve node populates one:
/// a few counter families, gauges, and labeled histograms with spread-out
/// samples in every bucket region.
fn populated_registry() -> MetricsRegistry {
    let registry = MetricsRegistry::new();
    for (name, value) in [
        ("quclear_engine_cache_hits_total", 4_096),
        ("quclear_engine_cache_misses_total", 128),
        ("quclear_serve_requests_total", 4_224),
    ] {
        registry.counter(name, "counter").add(value);
    }
    registry.gauge("quclear_serve_queue_depth", "gauge").set(3);
    for stage in ["fingerprint", "extract", "bind", "absorb_pre"] {
        let h = registry.histogram_labeled(
            "quclear_engine_stage_duration_ns",
            "stage latency",
            ("stage", stage),
        );
        let mut v: u64 = 0x9E37_79B9;
        for _ in 0..512 {
            v ^= v << 13;
            v ^= v >> 7;
            v ^= v << 17;
            h.record(v % 1_000_000);
        }
    }
    registry
}

fn bench_record_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry");
    group.sample_size(50);

    let histogram = Histogram::new();
    let mut tick: u64 = 1;
    group.bench_function("histogram_record", |b| {
        b.iter(|| {
            tick = tick.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            histogram.record(black_box(tick >> 33));
        });
    });

    let counter = Counter::new();
    group.bench_function("counter_inc", |b| {
        b.iter(|| black_box(&counter).inc());
    });

    let registry = populated_registry();
    group.bench_function("registry_snapshot", |b| {
        b.iter(|| black_box(registry.snapshot()));
    });

    let snapshot = registry.snapshot();
    group.bench_function("prometheus_render", |b| {
        b.iter(|| black_box(snapshot.to_prometheus_text()));
    });
    group.finish();
}

/// The acceptance smoke: time the record path directly and fail the run if
/// it regresses past [`RECORD_BUDGET_NS`]. Runs in `--test` mode too.
fn record_path_smoke(_c: &mut Criterion) {
    const ITERS: u64 = 1_000_000;
    let histogram = Histogram::new();
    // Warm the cache lines (and the branch predictor) before timing.
    for v in 0..10_000u64 {
        histogram.record(v);
    }
    let start = Instant::now();
    let mut tick: u64 = 1;
    for _ in 0..ITERS {
        tick = tick.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
        histogram.record(black_box(tick >> 33));
    }
    let per_record = start.elapsed().as_nanos() as f64 / ITERS as f64;
    println!(
        "telemetry/record_path_smoke: {per_record:.2} ns/record (budget {RECORD_BUDGET_NS} ns)"
    );
    assert!(
        per_record < RECORD_BUDGET_NS,
        "histogram record path took {per_record:.2} ns/op, budget is {RECORD_BUDGET_NS} ns"
    );
    // The samples all landed where they should: nothing was optimized away.
    assert_eq!(histogram.snapshot().count(), ITERS + 10_000);
}

criterion_group!(benches, bench_record_path, record_path_smoke);
criterion_main!(benches);

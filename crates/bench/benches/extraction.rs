//! Criterion micro-benchmarks of the Clifford Extraction pass (compile-time
//! component of Table III).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use quclear_core::{compile, extract_clifford, ExtractionConfig, QuClearConfig};
use quclear_workloads::Benchmark;

fn bench_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("clifford_extraction");
    group.sample_size(10);
    for bench in [
        Benchmark::Ucc(2, 4),
        Benchmark::Ucc(2, 6),
        Benchmark::Molecule(quclear_workloads::Molecule::LiH),
        Benchmark::MaxCutRegular { n: 15, degree: 4 },
        Benchmark::Labs(10),
    ] {
        let rotations = bench.rotations();
        group.bench_with_input(
            BenchmarkId::new("extract", bench.name()),
            &rotations,
            |b, rotations| {
                b.iter(|| extract_clifford(rotations, &ExtractionConfig::default()));
            },
        );
    }
    group.finish();
}

fn bench_full_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("quclear_pipeline");
    group.sample_size(10);
    for bench in [
        Benchmark::Ucc(2, 6),
        Benchmark::MaxCutRegular { n: 20, degree: 8 },
    ] {
        let rotations = bench.rotations();
        group.bench_with_input(
            BenchmarkId::new("compile", bench.name()),
            &rotations,
            |b, rotations| {
                b.iter(|| compile(rotations, &QuClearConfig::default()));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_extraction, bench_full_pipeline);
criterion_main!(benches);

//! Criterion benchmarks of the `quclear-engine` template cache: cold
//! compiles vs. warm binds vs. batched parameter sweeps.
//!
//! The headline acceptance number is the cold/warm ratio on a 20-rotation
//! program: a warm `bind` skips extraction, reordering and tree synthesis
//! entirely and must be ≥10× faster than a cold `compile`. Record a
//! baseline with `CRITERION_JSON=... cargo bench -p quclear-bench --bench
//! engine` (see `BENCH_engine.json` at the workspace root).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use quclear_core::{compile, QuClearConfig};
use quclear_engine::Engine;
use quclear_pauli::PauliRotation;
use quclear_workloads::{vqe_sweep, Benchmark};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic 20-rotation, 8-qubit program — the acceptance workload.
fn twenty_rotation_program() -> Vec<PauliRotation> {
    let mut rng = StdRng::seed_from_u64(2025);
    (0..20)
        .map(|_| {
            let pauli: String = (0..8)
                .map(|_| match rng.gen_range(0..4) {
                    0 => 'I',
                    1 => 'X',
                    2 => 'Y',
                    _ => 'Z',
                })
                .collect();
            PauliRotation::parse(&pauli, rng.gen_range(0.05..2.9)).unwrap()
        })
        .collect()
}

fn bench_cold_vs_warm(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group.sample_size(30);
    let program = twenty_rotation_program();
    let config = QuClearConfig::default();

    group.bench_with_input(
        BenchmarkId::new("cold_compile", "20rot"),
        &program,
        |b, program| {
            b.iter(|| compile(black_box(program), &config));
        },
    );

    let engine = Engine::new(64);
    engine.compile(&program).unwrap(); // prime the cache
    group.bench_with_input(
        BenchmarkId::new("warm_bind", "20rot"),
        &program,
        |b, program| {
            b.iter(|| engine.compile(black_box(program)).unwrap());
        },
    );

    let template = engine.template_for(&program).unwrap();
    let angles: Vec<f64> = program.iter().map(PauliRotation::angle).collect();
    group.bench_with_input(
        BenchmarkId::new("bind_only", "20rot"),
        &angles,
        |b, angles| {
            b.iter(|| template.bind(black_box(angles)).unwrap());
        },
    );
    group.finish();
}

fn bench_batched_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_sweep");
    group.sample_size(10);
    let sweep = vqe_sweep(&Benchmark::Ucc(2, 4), 64, 9);

    group.bench_with_input(
        BenchmarkId::new("sequential_compile", "ucc24x64"),
        &sweep,
        |b, sweep| {
            b.iter(|| {
                let config = QuClearConfig::default();
                for angles in &sweep.angle_sets {
                    let reangled: Vec<PauliRotation> = sweep
                        .program
                        .iter()
                        .zip(angles)
                        .map(|(r, &a)| PauliRotation::new(r.pauli().clone(), a))
                        .collect();
                    black_box(compile(&reangled, &config));
                }
            });
        },
    );

    group.bench_with_input(
        BenchmarkId::new("engine_sweep", "ucc24x64"),
        &sweep,
        |b, sweep| {
            b.iter(|| {
                let engine = Engine::new(8);
                black_box(engine.sweep(&sweep.program, &sweep.angle_sets).unwrap())
            });
        },
    );
    group.finish();
}

criterion_group!(benches, bench_cold_vs_warm, bench_batched_sweep);
criterion_main!(benches);

//! Criterion benchmarks of the word-parallel absorption pipeline, recorded
//! to `BENCH_absorb.json`.
//!
//! Two groups measure the batch paths against their scalar baselines:
//!
//! * `ca_pre` — rewriting ≥10k observables through the extracted Clifford:
//!   per-string `absorb_observables` (the pre-PR scalar path) versus the
//!   `AbsorptionPlan` frame sweep and the raw `CliffordTableau::apply_frame`
//!   kernel.
//! * `ca_post` — post-processing ≥1M shots: the per-shot `map_index` loop
//!   (the pre-PR scalar path) versus bit-plane packing + packed affine map,
//!   plus the expectation accumulators (per-shot parity counting versus
//!   XOR-of-planes popcounts over 64 observables).
//!
//! Record results with `CRITERION_JSON=<path> cargo bench -p quclear-bench
//! --bench absorb`.

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use quclear_core::{absorb_observables, compile, QuClearConfig, ShotBatch};
use quclear_pauli::{BitVec, PauliFrame, PauliOp, PauliString, SignedPauli};
use quclear_workloads::Benchmark;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const OBSERVABLES: usize = 10_240;
const SHOTS: usize = 1 << 20;
const EXPECTATION_OBSERVABLES: usize = 64;

fn random_observables(n: usize, count: usize, seed: u64) -> Vec<SignedPauli> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let ops: Vec<PauliOp> = (0..n)
                .map(|_| match rng.gen_range(0..4) {
                    0 => PauliOp::I,
                    1 => PauliOp::X,
                    2 => PauliOp::Y,
                    _ => PauliOp::Z,
                })
                .collect();
            SignedPauli::new(PauliString::from_ops(&ops), rng.gen_bool(0.5))
        })
        .collect()
}

fn bench_ca_pre(c: &mut Criterion) {
    let bench = Benchmark::Ucc(4, 8);
    let n = bench.num_qubits();
    let result = compile(&bench.rotations(), &QuClearConfig::default());
    let plan = result.absorption_plan();
    let observables = random_observables(n, OBSERVABLES, 0xCAFE);
    let frame = PauliFrame::from_signed(n, &observables);

    let mut group = c.benchmark_group("ca_pre");
    group.sample_size(20);
    group.bench_with_input(
        BenchmarkId::new("scalar", OBSERVABLES),
        &observables,
        |b, obs| {
            b.iter(|| absorb_observables(&result.heisenberg, black_box(obs)));
        },
    );
    group.bench_with_input(
        BenchmarkId::new("plan_frame", OBSERVABLES),
        &observables,
        |b, obs| {
            b.iter(|| plan.absorb(black_box(obs)));
        },
    );
    group.bench_with_input(
        BenchmarkId::new("apply_frame", OBSERVABLES),
        &frame,
        |b, f| {
            b.iter(|| result.heisenberg.apply_frame(black_box(f)));
        },
    );
    group.finish();
}

fn bench_ca_post(c: &mut Criterion) {
    let bench = Benchmark::MaxCutRegular { n: 20, degree: 12 };
    let n = 20usize;
    let result = compile(&bench.rotations(), &QuClearConfig::default());
    let absorber = result.probability_absorber().expect("QAOA is absorbable");
    let mut rng = StdRng::seed_from_u64(7);
    let shots: Vec<u64> = (0..SHOTS).map(|_| rng.gen_range(0..1u64 << n)).collect();
    let packed = ShotBatch::from_indices(n, &shots);

    let mut group = c.benchmark_group("ca_post");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("scalar_map", SHOTS), &shots, |b, shots| {
        b.iter(|| {
            shots
                .iter()
                .fold(0usize, |acc, &s| acc ^ absorber.map_index(s as usize))
        });
    });
    group.bench_with_input(BenchmarkId::new("planes_map", SHOTS), &shots, |b, shots| {
        b.iter(|| {
            let batch = ShotBatch::from_indices(n, black_box(shots));
            absorber.post_process_shots(&batch)
        });
    });

    // Expectation accumulation over 64 random Z-supports.
    let supports: Vec<(u64, BitVec)> = (0..EXPECTATION_OBSERVABLES as u64)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(100 + i);
            let mut mask_bits = 0u64;
            let mut mask = BitVec::zeros(n);
            for q in 0..n {
                if rng.gen_bool(0.3) {
                    mask_bits |= 1 << q;
                    mask.set(q, true);
                }
            }
            (mask_bits, mask)
        })
        .collect();
    group.bench_with_input(
        BenchmarkId::new("expectations_scalar", SHOTS),
        &shots,
        |b, shots| {
            b.iter(|| {
                supports
                    .iter()
                    .map(|&(mask_bits, _)| {
                        let minus = shots
                            .iter()
                            .filter(|&&s| (s & mask_bits).count_ones() % 2 == 1)
                            .count();
                        (shots.len() as f64 - 2.0 * minus as f64) / shots.len() as f64
                    })
                    .sum::<f64>()
            });
        },
    );
    group.bench_with_input(
        BenchmarkId::new("expectations_planes", SHOTS),
        &packed,
        |b, batch| {
            b.iter(|| {
                supports
                    .iter()
                    .map(|(_, mask)| batch.parity_expectation(mask))
                    .sum::<f64>()
            });
        },
    );
    let masks: Vec<BitVec> = supports.iter().map(|(_, mask)| mask.clone()).collect();
    group.bench_with_input(
        BenchmarkId::new("expectations_batched", SHOTS),
        &packed,
        |b, batch| {
            b.iter(|| {
                batch
                    .parity_expectations(black_box(&masks))
                    .iter()
                    .sum::<f64>()
            });
        },
    );
    group.finish();
}

/// Noise margin for the lane-vs-scalar smoke: the wide-lane kernels must
/// not be slower than the width-1 scalar instantiation beyond measurement
/// jitter.
const LANE_SLOWDOWN_TOLERANCE: f64 = 1.10;

/// Best-of-N wall time of `f`, in nanoseconds.
fn best_of<F: FnMut() -> u64>(mut f: F) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut sink = 0u64;
    for _ in 0..5 {
        let start = Instant::now();
        sink = sink.wrapping_add(f());
        best = best.min(start.elapsed().as_nanos() as f64);
    }
    (best, sink)
}

/// The acceptance smoke: on an absorb-shaped workload (1M shots packed into
/// bit planes, 64 observables) the wide-lane kernels behind
/// `parity_expectation` and `mul_planes` must never run slower than their
/// scalar (width-1) instantiations. Runs in `--test` mode too, where the
/// criterion stand-in skips timing but this `Instant` loop does not.
fn lane_vs_scalar_smoke(_c: &mut Criterion) {
    const N: usize = 20;
    const WORDS: usize = SHOTS / 64;
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let planes: Vec<Vec<u64>> = (0..N)
        .map(|_| (0..WORDS).map(|_| rng.gen_range(0..u64::MAX)).collect())
        .collect();
    let supports: Vec<Vec<usize>> = (0..EXPECTATION_OBSERVABLES)
        .map(|_| (0..N).filter(|_| rng.gen_bool(0.3)).collect())
        .collect();

    // Expectation path: XOR-fold + popcount over each support's planes.
    let fold = |width_is_lane: bool| -> u64 {
        supports
            .iter()
            .map(|support| {
                let srcs: Vec<&[u64]> = support.iter().map(|&q| planes[q].as_slice()).collect();
                if width_is_lane {
                    simd::xor_popcount_w::<{ simd::LANE_WORDS }>(black_box(&srcs), WORDS)
                } else {
                    simd::xor_popcount_w::<1>(black_box(&srcs), WORDS)
                }
            })
            .sum()
    };
    let (scalar_ns, scalar_sum) = best_of(|| fold(false));
    let (lane_ns, lane_sum) = best_of(|| fold(true));
    assert_eq!(scalar_sum, lane_sum, "lane fold disagrees with scalar fold");
    let ratio = lane_ns / scalar_ns;
    println!(
        "absorb/lane_vs_scalar_smoke: xor_popcount lane={:.2} ms scalar={:.2} ms ratio={ratio:.3} \
         (lane_words={})",
        lane_ns / 1e6,
        scalar_ns / 1e6,
        simd::LANE_WORDS,
    );
    assert!(
        ratio < LANE_SLOWDOWN_TOLERANCE,
        "wide-lane xor_popcount is {ratio:.3}x the scalar path (tolerance {LANE_SLOWDOWN_TOLERANCE})"
    );

    // Map path: fused multi-source XOR into a destination row.
    let xor_many = |width_is_lane: bool| -> u64 {
        let mut acc = 0u64;
        let mut dst = vec![0u64; WORDS];
        for support in &supports {
            let srcs: Vec<&[u64]> = support.iter().map(|&q| planes[q].as_slice()).collect();
            if width_is_lane {
                simd::xor_many_into_w::<{ simd::LANE_WORDS }>(black_box(&mut dst), &srcs);
            } else {
                simd::xor_many_into_w::<1>(black_box(&mut dst), &srcs);
            }
            acc = acc.wrapping_add(dst[WORDS / 2]);
        }
        acc
    };
    let (scalar_ns, scalar_acc) = best_of(|| xor_many(false));
    let (lane_ns, lane_acc) = best_of(|| xor_many(true));
    assert_eq!(scalar_acc, lane_acc, "lane xor_many disagrees with scalar");
    let ratio = lane_ns / scalar_ns;
    println!(
        "absorb/lane_vs_scalar_smoke: xor_many lane={:.2} ms scalar={:.2} ms ratio={ratio:.3}",
        lane_ns / 1e6,
        scalar_ns / 1e6,
    );
    assert!(
        ratio < LANE_SLOWDOWN_TOLERANCE,
        "wide-lane xor_many_into is {ratio:.3}x the scalar path (tolerance {LANE_SLOWDOWN_TOLERANCE})"
    );
}

criterion_group!(benches, bench_ca_pre, bench_ca_post, lane_vs_scalar_smoke);
criterion_main!(benches);

//! Criterion benchmarks of the word-parallel Clifford kernels.
//!
//! Three groups cover the hot paths rewritten onto bit-planes:
//!
//! * `tableau` — building a Clifford tableau from a circuit (`then_gate`
//!   word kernels) and applying it to Pauli strings (masked popcount
//!   `apply`), at 16/64/128 qubits.
//! * `frame` — batched conjugation of a whole Pauli frame through a random
//!   Clifford circuit (the extraction lookahead kernel).
//! * `extraction` — cold compile of the UCC-(2,6) workload, the headline
//!   acceptance number (≥3× over the pre-bit-plane baseline; see
//!   `BENCH_kernels.json`).
//! * `cache` — template lookups against the sharded cache from one thread
//!   and from 32 threads hammering one hot entry (read-mostly fast path).
//!
//! Record results with `CRITERION_JSON=<path> cargo bench -p quclear-bench
//! --bench kernels`.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use quclear_core::{compile, QuClearConfig};
use quclear_engine::Engine;
use quclear_pauli::{PauliFrame, PauliOp, PauliRotation, PauliString, SignedPauli};
use quclear_tableau::{conjugate_all_by_gate, random_clifford_circuit, CliffordTableau};
use quclear_workloads::Benchmark;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_pauli(n: usize, rng: &mut StdRng) -> PauliString {
    let mut p = PauliString::identity(n);
    for q in 0..n {
        let op = match rng.gen_range(0..4) {
            0 => PauliOp::I,
            1 => PauliOp::X,
            2 => PauliOp::Y,
            _ => PauliOp::Z,
        };
        p.set_op(q, op);
    }
    p
}

fn bench_tableau(c: &mut Criterion) {
    let mut group = c.benchmark_group("tableau");
    group.sample_size(30);
    for n in [16usize, 64, 128] {
        let mut rng = StdRng::seed_from_u64(42 + n as u64);
        let circuit = random_clifford_circuit(n, 6 * n, &mut rng);
        group.bench_with_input(BenchmarkId::new("from_circuit", n), &circuit, |b, qc| {
            b.iter(|| CliffordTableau::from_circuit(black_box(qc)));
        });
        let tableau = CliffordTableau::from_circuit(&circuit);
        let paulis: Vec<PauliString> = (0..64).map(|_| random_pauli(n, &mut rng)).collect();
        group.bench_with_input(
            BenchmarkId::new("apply_x64", n),
            &(tableau, paulis),
            |b, (t, ps)| {
                b.iter(|| {
                    let mut acc = 0usize;
                    for p in ps {
                        acc += t.apply(black_box(p)).weight();
                    }
                    acc
                });
            },
        );
    }
    group.finish();
}

fn bench_frame(c: &mut Criterion) {
    let mut group = c.benchmark_group("frame");
    group.sample_size(30);
    let n = 32;
    let rows = 256;
    let mut rng = StdRng::seed_from_u64(7);
    let circuit = random_clifford_circuit(n, 4 * n, &mut rng);
    let signed: Vec<SignedPauli> = (0..rows)
        .map(|_| SignedPauli::positive(random_pauli(n, &mut rng)))
        .collect();
    group.bench_with_input(
        BenchmarkId::new("conjugate_256rows", "32q_128gates"),
        &(circuit, signed),
        |b, (qc, rows)| {
            b.iter(|| {
                let mut frame = PauliFrame::from_signed(n, rows);
                for gate in qc.gates() {
                    conjugate_all_by_gate(&mut frame, gate);
                }
                frame.sign_plane().count_ones()
            });
        },
    );
    group.finish();
}

fn bench_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("extraction");
    group.sample_size(30);
    let program = Benchmark::Ucc(2, 6).rotations();
    let config = QuClearConfig::default();
    group.bench_with_input(
        BenchmarkId::new("cold_compile", "ucc26"),
        &program,
        |b, program| {
            b.iter(|| compile(black_box(program), &config));
        },
    );
    group.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache");
    group.sample_size(20);
    let program = Benchmark::Ucc(2, 6).rotations();
    let angles: Vec<f64> = program.iter().map(PauliRotation::angle).collect();

    let engine = Arc::new(Engine::new(64));
    engine.compile(&program).expect("prime");

    // Hot-hit path from a single thread: lookup + bind.
    group.bench_with_input(
        BenchmarkId::new("warm_lookup_bind", "1thread"),
        &(Arc::clone(&engine), program.clone(), angles.clone()),
        |b, (engine, program, angles)| {
            b.iter(|| {
                let template = engine.template_for(black_box(program)).unwrap();
                template.bind(black_box(angles)).unwrap()
            });
        },
    );

    // 32 threads hammering the same hot template: measures contention on
    // the read-mostly fast path (wall time for 32×16 lookups+binds).
    group.bench_with_input(
        BenchmarkId::new("warm_lookup_bind", "32threads"),
        &(Arc::clone(&engine), program, angles),
        |b, (engine, program, angles)| {
            b.iter(|| {
                std::thread::scope(|scope| {
                    for _ in 0..32 {
                        let engine = Arc::clone(engine);
                        scope.spawn(move || {
                            for _ in 0..16 {
                                let template = engine.template_for(black_box(program)).unwrap();
                                black_box(template.bind(black_box(angles)).unwrap());
                            }
                        });
                    }
                });
            });
        },
    );
    group.finish();
}

criterion_group!(
    benches,
    bench_tableau,
    bench_frame,
    bench_extraction,
    bench_cache
);
criterion_main!(benches);

//! Criterion benchmarks of the QASM ingestion path: the lift pass itself
//! (gate-stream → rotation program), parse + lift, and the engine's
//! cold-vs-warm `compile_qasm`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use quclear_circuit::qasm::from_qasm;
use quclear_core::lift;
use quclear_engine::Engine;
use quclear_workloads::{hardware_efficient_qasm, zz_chain_qasm};

fn bench_lift_pass(c: &mut Criterion) {
    let mut group = c.benchmark_group("lift");
    group.sample_size(30);

    // A deep hardware-efficient ansatz: every CX chain stays in the frame,
    // so rotation axes grow — the stress shape for the commutation pass.
    for (n, layers) in [(16, 4), (32, 8)] {
        let ansatz = hardware_efficient_qasm(n, layers, 5);
        let circuit = from_qasm(&ansatz.qasm).unwrap();
        group.bench_with_input(
            BenchmarkId::new("lift_pass", format!("{n}q_{}gates", circuit.len())),
            &circuit,
            |b, circuit| {
                b.iter(|| lift(black_box(circuit)));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("parse_and_lift", format!("{n}q_{}gates", circuit.len())),
            &ansatz.qasm,
            |b, qasm| {
                b.iter(|| lift(&from_qasm(black_box(qasm)).unwrap()));
            },
        );
    }
    group.finish();
}

fn bench_engine_qasm(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_qasm");
    group.sample_size(20);
    let ansatz = zz_chain_qasm(10, 3, 17);

    group.bench_function("compile_qasm_cold", |b| {
        b.iter(|| {
            let engine = Engine::new(4);
            engine.compile_qasm(black_box(&ansatz.qasm)).unwrap()
        });
    });

    let engine = Engine::new(4);
    engine.compile_qasm(&ansatz.qasm).unwrap(); // prime the template
    group.bench_function("compile_qasm_warm", |b| {
        b.iter(|| engine.compile_qasm(black_box(&ansatz.qasm)).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_lift_pass, bench_engine_qasm);
criterion_main!(benches);

//! A slab-backed LRU map used as the engine's template cache.
//!
//! Intrusive doubly-linked recency list over a `Vec` slab plus a
//! `HashMap<K, slot>` index: `get`/`insert` are O(1) (amortized), eviction
//! pops the list tail. No unsafe code, no external dependencies.

use std::collections::HashMap;
use std::hash::Hash;

/// Sentinel "null" link.
const NONE: usize = usize::MAX;

#[derive(Debug)]
struct Slot<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// A fixed-capacity map evicting the least-recently-used entry.
#[derive(Debug)]
pub struct LruCache<K, V> {
    capacity: usize,
    index: HashMap<K, usize>,
    slab: Vec<Option<Slot<K, V>>>,
    free: Vec<usize>,
    /// Most recently used.
    head: usize,
    /// Least recently used.
    tail: usize,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LRU capacity must be positive");
        LruCache {
            capacity,
            index: HashMap::with_capacity(capacity),
            slab: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NONE,
            tail: NONE,
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the cache is empty.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up `key`, marking the entry as most recently used.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let slot = *self.index.get(key)?;
        self.detach(slot);
        self.attach_front(slot);
        self.slab[slot].as_ref().map(|s| &s.value)
    }

    /// Inserts or replaces `key`, returning the evicted LRU entry (if the
    /// cache was full) or the replaced value for an existing key.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if let Some(&slot) = self.index.get(&key) {
            let old = self.slab[slot]
                .as_mut()
                .map(|s| std::mem::replace(&mut s.value, value));
            self.detach(slot);
            self.attach_front(slot);
            return old.map(|v| (key, v));
        }

        let evicted = if self.index.len() == self.capacity {
            let lru = self.tail;
            self.detach(lru);
            let slot = self.slab[lru].take().expect("tail slot must be occupied");
            self.index.remove(&slot.key);
            self.free.push(lru);
            Some((slot.key, slot.value))
        } else {
            None
        };

        let slot = match self.free.pop() {
            Some(idx) => idx,
            None => {
                self.slab.push(None);
                self.slab.len() - 1
            }
        };
        self.slab[slot] = Some(Slot {
            key: key.clone(),
            value,
            prev: NONE,
            next: NONE,
        });
        self.index.insert(key, slot);
        self.attach_front(slot);
        evicted
    }

    /// Removes every entry, keeping the capacity.
    pub fn clear(&mut self) {
        self.index.clear();
        self.slab.clear();
        self.free.clear();
        self.head = NONE;
        self.tail = NONE;
    }

    /// Keys from most to least recently used (test/diagnostic helper).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn keys_by_recency(&self) -> Vec<K> {
        let mut keys = Vec::with_capacity(self.len());
        let mut cursor = self.head;
        while cursor != NONE {
            let slot = self.slab[cursor].as_ref().expect("linked slot occupied");
            keys.push(slot.key.clone());
            cursor = slot.next;
        }
        keys
    }

    /// Unlinks `slot` from the recency list.
    fn detach(&mut self, slot: usize) {
        let (prev, next) = {
            let s = self.slab[slot].as_ref().expect("detaching empty slot");
            (s.prev, s.next)
        };
        match prev {
            NONE => {
                if self.head == slot {
                    self.head = next;
                }
            }
            p => self.slab[p].as_mut().expect("prev occupied").next = next,
        }
        match next {
            NONE => {
                if self.tail == slot {
                    self.tail = prev;
                }
            }
            n => self.slab[n].as_mut().expect("next occupied").prev = prev,
        }
        if let Some(s) = self.slab[slot].as_mut() {
            s.prev = NONE;
            s.next = NONE;
        }
    }

    /// Links `slot` at the head (most recently used).
    fn attach_front(&mut self, slot: usize) {
        let old_head = self.head;
        {
            let s = self.slab[slot].as_mut().expect("attaching empty slot");
            s.prev = NONE;
            s.next = old_head;
        }
        if old_head != NONE {
            self.slab[old_head].as_mut().expect("head occupied").prev = slot;
        }
        self.head = slot;
        if self.tail == NONE {
            self.tail = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inserts_and_gets() {
        let mut lru = LruCache::new(2);
        assert!(lru.is_empty());
        assert_eq!(lru.insert("a", 1), None);
        assert_eq!(lru.insert("b", 2), None);
        assert_eq!(lru.get(&"a"), Some(&1));
        assert_eq!(lru.get(&"missing"), None);
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.capacity(), 2);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut lru = LruCache::new(2);
        lru.insert("a", 1);
        lru.insert("b", 2);
        lru.get(&"a"); // freshen a; b becomes LRU
        assert_eq!(lru.insert("c", 3), Some(("b", 2)));
        assert_eq!(lru.get(&"b"), None);
        assert_eq!(lru.keys_by_recency(), vec!["c", "a"]);
    }

    #[test]
    fn reinsert_replaces_and_freshens() {
        let mut lru = LruCache::new(2);
        lru.insert("a", 1);
        lru.insert("b", 2);
        assert_eq!(lru.insert("a", 10), Some(("a", 1)));
        // a is now MRU; inserting c evicts b.
        assert_eq!(lru.insert("c", 3), Some(("b", 2)));
        assert_eq!(lru.get(&"a"), Some(&10));
    }

    #[test]
    fn capacity_one_cycles() {
        let mut lru = LruCache::new(1);
        assert_eq!(lru.insert(1, "x"), None);
        assert_eq!(lru.insert(2, "y"), Some((1, "x")));
        assert_eq!(lru.insert(3, "z"), Some((2, "y")));
        assert_eq!(lru.get(&3), Some(&"z"));
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn clear_resets() {
        let mut lru = LruCache::new(3);
        lru.insert(1, 1);
        lru.insert(2, 2);
        lru.clear();
        assert!(lru.is_empty());
        assert_eq!(lru.get(&1), None);
        lru.insert(3, 3);
        assert_eq!(lru.get(&3), Some(&3));
    }

    #[test]
    fn slab_slots_are_recycled() {
        let mut lru = LruCache::new(2);
        for i in 0..100 {
            lru.insert(i, i);
        }
        // Only ever 2 live entries → slab never grows past capacity.
        assert!(lru.slab.len() <= 2);
        assert_eq!(lru.keys_by_recency(), vec![99, 98]);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = LruCache::<u8, u8>::new(0);
    }
}

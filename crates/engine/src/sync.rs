//! Crate-local alias for the sync primitives the engine's concurrent
//! machinery uses.
//!
//! In production builds (the default) every name here is exactly its
//! `std::sync` / `std::time` counterpart — this module compiles away to
//! re-exports. With the `sched-model` feature the same names come from
//! `quclear-sched`, whose drop-in types route every acquire/release,
//! atomic access, condvar park/notify, and `Instant::now` through a
//! deterministic scheduler, so the model-check suite
//! (`tests/sched_models.rs`) can explore the interleavings of
//! `SingleFlight` and `ShardedCache` exhaustively and replay any
//! violation. Concurrency-critical modules must import sync primitives
//! from here, never from `std::sync` directly, or the checker cannot see
//! them (enforced by `cargo run -p xtask -- lint`).
//!
//! `engine::lru` is deliberately absent: the slab LRU has no interior
//! mutability and is only ever touched under a `ShardedCache` shard lock,
//! so there is nothing for the scheduler to interpose on.

#[cfg(feature = "sched-model")]
pub(crate) use quclear_sched::sync::{
    atomic, Arc, Condvar, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard,
};
#[cfg(feature = "sched-model")]
pub(crate) use quclear_sched::time::Instant;

#[cfg(not(feature = "sched-model"))]
pub(crate) use std::sync::{
    atomic, Arc, Condvar, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard,
};
#[cfg(not(feature = "sched-model"))]
pub(crate) use std::time::Instant;

//! Request deadlines: a cooperative time budget threaded through the
//! pipeline.
//!
//! A [`Deadline`] is an absolute point in time after which a request's
//! caller no longer wants the answer. The engine does not preempt work —
//! an extraction that has started runs to completion (and still populates
//! the template cache, so the time is not wasted) — but every stage
//! boundary *checks* the budget and fails fast with
//! [`EngineError::DeadlineExceeded`] instead of starting work whose result
//! nobody will read. Crucially, a coalesced waiter parked on another
//! thread's in-flight compilation waits **at most** until its deadline and
//! then detaches ([`crate::SingleFlight::run_with_deadline`]), so a slow
//! leader can never hold a bounded request hostage.
//!
//! `Deadline` is `Copy` and absolute, so one value can be handed to every
//! stage (and every job of a batch) without re-arithmetic: the budget is
//! shared, not per-stage.

use std::time::Duration;

use crate::error::EngineError;
use crate::sync::Instant;

/// An absolute time budget for one request. [`Deadline::none`] (the
/// default) never expires; every undated engine entry point uses it.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use quclear_engine::Deadline;
///
/// let unbounded = Deadline::none();
/// assert!(!unbounded.expired());
/// assert!(unbounded.check().is_ok());
///
/// let tight = Deadline::within(Duration::ZERO);
/// assert!(tight.expired());
/// assert!(tight.check().is_err());
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Deadline {
    at: Option<Instant>,
}

impl Deadline {
    /// A deadline that never expires.
    #[must_use]
    pub const fn none() -> Self {
        Deadline { at: None }
    }

    /// A deadline `budget` from now.
    #[must_use]
    pub fn within(budget: Duration) -> Self {
        Deadline {
            at: Some(Instant::now() + budget),
        }
    }

    /// A deadline at an absolute instant (e.g. one computed when a request
    /// frame arrived, shared across its pipeline stages).
    #[must_use]
    pub const fn at(instant: Instant) -> Self {
        Deadline { at: Some(instant) }
    }

    /// The absolute expiry instant, or `None` for an unbounded deadline.
    #[must_use]
    pub const fn instant(&self) -> Option<Instant> {
        self.at
    }

    /// Whether the budget is spent. An unbounded deadline never expires.
    #[must_use]
    pub fn expired(&self) -> bool {
        self.at.is_some_and(|at| Instant::now() >= at)
    }

    /// Time left before expiry: `None` for unbounded, `Some(ZERO)` once
    /// expired.
    #[must_use]
    pub fn remaining(&self) -> Option<Duration> {
        self.at
            .map(|at| at.saturating_duration_since(Instant::now()))
    }

    /// The cooperative stage-boundary check: `Ok` while budget remains,
    /// [`EngineError::DeadlineExceeded`] once it is spent.
    ///
    /// # Errors
    ///
    /// [`EngineError::DeadlineExceeded`] when the deadline has passed.
    pub fn check(&self) -> Result<(), EngineError> {
        if self.expired() {
            Err(EngineError::DeadlineExceeded)
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_never_expires() {
        let d = Deadline::none();
        assert!(!d.expired());
        assert_eq!(d.remaining(), None);
        assert_eq!(d.instant(), None);
        d.check().unwrap();
        assert_eq!(Deadline::default(), Deadline::none());
    }

    #[test]
    fn zero_budget_expires_immediately() {
        let d = Deadline::within(Duration::ZERO);
        assert!(d.expired());
        assert_eq!(d.remaining(), Some(Duration::ZERO));
        assert_eq!(d.check(), Err(EngineError::DeadlineExceeded));
    }

    #[test]
    fn generous_budget_has_time_remaining() {
        let d = Deadline::within(Duration::from_secs(3600));
        assert!(!d.expired());
        assert!(d.remaining().unwrap() > Duration::from_secs(3500));
        d.check().unwrap();
    }

    #[test]
    fn absolute_deadlines_are_shared_state() {
        let at = Instant::now() + Duration::from_secs(10);
        let a = Deadline::at(at);
        let b = a; // Copy: one budget, many stages
        assert_eq!(a.instant(), b.instant());
    }
}

//! Single-flight request coalescing.
//!
//! A long-running service in front of the template cache sees *thundering
//! herds*: when N clients ask for the same uncached structure at once, each
//! of them misses and each runs the full (expensive) extraction, even though
//! the first result would have served all of them. [`SingleFlight`] closes
//! that window: the first caller for a key becomes the **leader** and runs
//! the computation; every concurrent caller with the same key parks on a
//! condvar and receives a clone of the leader's result. Keys for *different*
//! values never wait on each other.
//!
//! # Robustness
//!
//! The failure mode that matters for a long-running process is a leader that
//! never completes — it panicked, or its thread was torn down — leaving
//! waiters parked forever. Every leader therefore registers a completion
//! guard: if the computation unwinds, the guard (running during the unwind)
//! marks the flight *abandoned* and wakes all waiters, which then retry and
//! elect a new leader among themselves. No panic inside the computed closure
//! can strand a waiter, and the panic itself propagates unchanged to the
//! leader's caller (the engine wraps compilations in `contain_panics`, so in
//! practice the closure returns `Err` instead of unwinding).
//!
//! Errors are shared like successes: if the leader's computation returns a
//! value at all (including an `Err` wrapped in the value type), waiters get
//! a clone. Negative results are *not* remembered once the flight closes —
//! the next request for the key starts a fresh flight.

use crate::sync::{Arc, Condvar, Instant, Mutex, PoisonError};
use std::collections::HashMap;
use std::hash::Hash;

/// How a [`SingleFlight::run`] call obtained its value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// This call ran the computation itself.
    Led,
    /// This call waited for a concurrent leader and shares its result.
    Coalesced,
}

/// State of one in-flight computation.
enum FlightState<V> {
    /// The leader is still computing.
    Running,
    /// The leader finished; waiters clone this value.
    Done(V),
    /// The leader unwound without producing a value; waiters must retry.
    Abandoned,
}

/// How one parked wait on a flight resolved.
enum WaitOutcome<V> {
    /// The leader finished; here is a clone of its value.
    Done(V),
    /// The leader unwound; the waiter should retry (and may lead).
    Abandoned,
    /// The waiter's deadline passed while the leader was still computing;
    /// the waiter detached. The flight itself is unaffected — the leader
    /// keeps computing and will still serve any waiter with more budget.
    Detached,
}

/// One in-flight computation: its state plus the condvar waiters park on.
struct Flight<V> {
    state: Mutex<FlightState<V>>,
    done: Condvar,
}

/// Coalesces concurrent computations of the same key into one execution.
///
/// Values must be [`Clone`] (waiters receive clones of the leader's result);
/// in the engine the value is `Result<Arc<CompiledTemplate>, EngineError>`,
/// so a clone is two refcount bumps.
pub struct SingleFlight<K, V> {
    inflight: Mutex<HashMap<K, Arc<Flight<V>>>>,
}

impl<K, V> Default for SingleFlight<K, V> {
    fn default() -> Self {
        SingleFlight {
            inflight: Mutex::new(HashMap::new()),
        }
    }
}

impl<K, V> SingleFlight<K, V>
where
    K: Eq + Hash + Clone,
    V: Clone,
{
    /// Creates an empty coalescer.
    #[must_use]
    pub fn new() -> Self {
        SingleFlight::default()
    }

    /// Number of keys currently in flight (diagnostics).
    pub fn in_flight(&self) -> usize {
        self.lock_inflight().len()
    }

    /// Runs `compute` for `key`, coalescing with any concurrent call.
    ///
    /// Exactly one concurrent caller per key executes `compute` (the one
    /// returning [`Role::Led`]); the others block until it finishes and
    /// return a clone of its value with [`Role::Coalesced`]. If the leader
    /// panics, its waiters elect a new leader among themselves instead of
    /// hanging, and the panic propagates to the original leader's caller.
    pub fn run(&self, key: &K, compute: impl FnOnce() -> V) -> (V, Role) {
        self.run_with_deadline(key, None, compute)
            .expect("an unbounded wait cannot detach")
    }

    /// [`SingleFlight::run`] with a bounded wait: a **waiter** whose
    /// `deadline` passes while the leader is still computing detaches and
    /// returns `None` instead of parking forever behind a slow flight. The
    /// flight itself is unaffected — the leader runs to completion and its
    /// result still serves every waiter with more budget (and, in the
    /// engine, still populates the template cache).
    ///
    /// A caller that *leads* is never interrupted: the computation is not
    /// preemptible, so leaders always return `Some` (callers wanting a
    /// pre-flight budget check should make it inside `compute`, where a
    /// fail-fast value is shared with the waiters like any other result).
    /// `deadline: None` waits unboundedly, exactly like [`SingleFlight::run`].
    pub fn run_with_deadline(
        &self,
        key: &K,
        deadline: Option<Instant>,
        compute: impl FnOnce() -> V,
    ) -> Option<(V, Role)> {
        // `Option` because the loop can only consume the closure once: every
        // leading iteration returns, so retries after an abandoned flight
        // still hold the un-run closure.
        let mut compute = Some(compute);
        loop {
            let flight = {
                let mut inflight = self.lock_inflight();
                if let Some(existing) = inflight.get(key) {
                    Arc::clone(existing)
                } else {
                    let flight = Arc::new(Flight {
                        state: Mutex::new(FlightState::Running),
                        done: Condvar::new(),
                    });
                    inflight.insert(key.clone(), Arc::clone(&flight));
                    drop(inflight);
                    let compute = compute.take().expect("leading consumes the closure once");
                    return Some((self.lead(key, &flight, compute), Role::Led));
                }
            };
            match Self::wait(&flight, deadline) {
                WaitOutcome::Done(value) => return Some((value, Role::Coalesced)),
                WaitOutcome::Detached => return None,
                // The leader unwound without a value; loop and try to lead.
                WaitOutcome::Abandoned => {}
            }
        }
    }

    /// Leader path: run the computation under a completion guard so that
    /// waiters are released even if `compute` unwinds.
    fn lead(&self, key: &K, flight: &Arc<Flight<V>>, compute: impl FnOnce() -> V) -> V {
        let guard = CompletionGuard {
            owner: self,
            key,
            flight,
            completed: false,
        };
        let value = compute();
        guard.complete(FlightState::Done(value.clone()));
        value
    }

    /// Waiter path: park until the flight resolves, the leader abandons it,
    /// or `deadline` passes (checked against the wall clock on every wake,
    /// so spurious condvar wakeups cannot extend the wait).
    fn wait(flight: &Flight<V>, deadline: Option<Instant>) -> WaitOutcome<V> {
        let mut state = flight.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            match &*state {
                FlightState::Running => match deadline {
                    None => {
                        state = flight
                            .done
                            .wait(state)
                            .unwrap_or_else(PoisonError::into_inner);
                    }
                    Some(at) => {
                        let now = Instant::now();
                        if now >= at {
                            return WaitOutcome::Detached;
                        }
                        let (guard, _timed_out) = flight
                            .done
                            .wait_timeout(state, at - now)
                            .unwrap_or_else(PoisonError::into_inner);
                        state = guard;
                    }
                },
                FlightState::Done(value) => return WaitOutcome::Done(value.clone()),
                FlightState::Abandoned => return WaitOutcome::Abandoned,
            }
        }
    }

    /// Removes `key` from the in-flight table and resolves `flight`.
    fn finish(&self, key: &K, flight: &Flight<V>, resolution: FlightState<V>) {
        self.lock_inflight().remove(key);
        let mut state = flight.state.lock().unwrap_or_else(PoisonError::into_inner);
        *state = resolution;
        drop(state);
        flight.done.notify_all();
    }

    /// The in-flight table, recovering from poisoning: the map holds only
    /// `Arc`s and every mutation is a single `insert`/`remove`, so it is
    /// structurally valid at every panic point.
    fn lock_inflight(&self) -> crate::sync::MutexGuard<'_, HashMap<K, Arc<Flight<V>>>> {
        self.inflight.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Marks the flight abandoned if the leader's computation unwinds before
/// [`CompletionGuard::complete`] runs.
struct CompletionGuard<'a, K: Eq + Hash + Clone, V: Clone> {
    owner: &'a SingleFlight<K, V>,
    key: &'a K,
    flight: &'a Arc<Flight<V>>,
    completed: bool,
}

impl<K: Eq + Hash + Clone, V: Clone> CompletionGuard<'_, K, V> {
    fn complete(mut self, resolution: FlightState<V>) {
        self.owner.finish(self.key, self.flight, resolution);
        self.completed = true;
    }
}

impl<K: Eq + Hash + Clone, V: Clone> Drop for CompletionGuard<'_, K, V> {
    fn drop(&mut self) {
        if !self.completed {
            self.owner
                .finish(self.key, self.flight, FlightState::Abandoned);
        }
    }
}

impl<K, V> std::fmt::Debug for SingleFlight<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let len = self
            .inflight
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len();
        f.debug_struct("SingleFlight")
            .field("in_flight", &len)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    #[test]
    fn sequential_calls_each_lead() {
        let sf: SingleFlight<u32, u32> = SingleFlight::new();
        let (v, role) = sf.run(&1, || 10);
        assert_eq!((v, role), (10, Role::Led));
        // The flight closed; a second call recomputes.
        let (v, role) = sf.run(&1, || 11);
        assert_eq!((v, role), (11, Role::Led));
        assert_eq!(sf.in_flight(), 0);
    }

    #[test]
    fn concurrent_same_key_runs_once() {
        let sf: Arc<SingleFlight<u32, u64>> = Arc::new(SingleFlight::new());
        let computed = Arc::new(AtomicUsize::new(0));
        let threads = 8;
        let barrier = Arc::new(Barrier::new(threads));
        let mut led = 0;
        let mut coalesced = 0;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let sf = Arc::clone(&sf);
                    let computed = Arc::clone(&computed);
                    let barrier = Arc::clone(&barrier);
                    scope.spawn(move || {
                        barrier.wait();
                        sf.run(&7, || {
                            computed.fetch_add(1, Ordering::SeqCst);
                            // Hold the flight open long enough for the other
                            // threads to park on it.
                            std::thread::sleep(std::time::Duration::from_millis(50));
                            42u64
                        })
                    })
                })
                .collect();
            for handle in handles {
                let (value, role) = handle.join().unwrap();
                assert_eq!(value, 42);
                match role {
                    Role::Led => led += 1,
                    Role::Coalesced => coalesced += 1,
                }
            }
        });
        // Coalescing is best-effort under scheduling, but with the leader
        // sleeping 50ms while all threads start together, every other thread
        // must have joined its flight.
        assert_eq!(computed.load(Ordering::SeqCst), 1);
        assert_eq!(led, 1);
        assert_eq!(coalesced, threads - 1);
        assert_eq!(sf.in_flight(), 0);
    }

    #[test]
    fn distinct_keys_do_not_coalesce() {
        let sf: Arc<SingleFlight<u32, u32>> = Arc::new(SingleFlight::new());
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4u32)
                .map(|k| {
                    let sf = Arc::clone(&sf);
                    scope.spawn(move || sf.run(&k, || k * 10))
                })
                .collect();
            for (k, handle) in handles.into_iter().enumerate() {
                let (value, role) = handle.join().unwrap();
                assert_eq!(value, k as u32 * 10);
                assert_eq!(role, Role::Led);
            }
        });
    }

    #[test]
    fn errors_are_shared_not_cached() {
        let sf: SingleFlight<u32, Result<u32, String>> = SingleFlight::new();
        let (v, _) = sf.run(&1, || Err("boom".to_string()));
        assert_eq!(v, Err("boom".to_string()));
        // The flight closed with the error; the next call recomputes.
        let (v, role) = sf.run(&1, || Ok(5));
        assert_eq!((v, role), (Ok(5), Role::Led));
    }

    #[test]
    fn deadline_waiter_detaches_while_flight_completes() {
        let sf: Arc<SingleFlight<u32, u32>> = Arc::new(SingleFlight::new());
        let barrier = Arc::new(Barrier::new(2));
        std::thread::scope(|scope| {
            let leader = {
                let sf = Arc::clone(&sf);
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    sf.run(&5, || {
                        barrier.wait();
                        // Outlive the waiter's deadline by a wide margin.
                        std::thread::sleep(std::time::Duration::from_millis(400));
                        77
                    })
                })
            };
            let waiter = {
                let sf = Arc::clone(&sf);
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    barrier.wait();
                    let deadline = Instant::now() + std::time::Duration::from_millis(50);
                    sf.run_with_deadline(&5, Some(deadline), || {
                        panic!("a waiter that detaches must never run the closure")
                    })
                })
            };
            assert!(
                waiter.join().unwrap().is_none(),
                "the waiter must detach at its deadline"
            );
            // The leader was unaffected by the detach.
            assert_eq!(leader.join().unwrap(), (77, Role::Led));
        });
        assert_eq!(sf.in_flight(), 0);
    }

    #[test]
    fn expired_deadline_still_leads_an_uncontended_flight() {
        // Leaders are never interrupted: with no flight to wait on, the
        // caller leads regardless of its deadline (budget checks belong
        // inside the computation).
        let sf: SingleFlight<u32, u32> = SingleFlight::new();
        let past = Instant::now() - std::time::Duration::from_millis(1);
        let outcome = sf.run_with_deadline(&9, Some(past), || 13);
        assert_eq!(outcome, Some((13, Role::Led)));
        assert_eq!(sf.in_flight(), 0);
    }

    #[test]
    fn panicking_leader_releases_waiters() {
        let sf: Arc<SingleFlight<u32, u32>> = Arc::new(SingleFlight::new());
        let barrier = Arc::new(Barrier::new(2));
        std::thread::scope(|scope| {
            let leader = {
                let sf = Arc::clone(&sf);
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    catch_unwind(AssertUnwindSafe(|| {
                        sf.run(&3, || {
                            barrier.wait();
                            // Give the waiter time to park on the flight.
                            std::thread::sleep(std::time::Duration::from_millis(50));
                            panic!("leader dies");
                        })
                    }))
                })
            };
            let waiter = {
                let sf = Arc::clone(&sf);
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    barrier.wait();
                    // Arrive while the leader is (most likely) mid-flight;
                    // either way the call must complete, not hang.
                    sf.run(&3, || 99)
                })
            };
            assert!(leader.join().unwrap().is_err(), "leader must panic");
            let (value, _) = waiter.join().unwrap();
            assert_eq!(value, 99, "waiter must re-lead after the abandon");
        });
        assert_eq!(sf.in_flight(), 0);
    }
}

//! Error types of the compilation engine.
//!
//! Every per-job failure mode is a variant of [`EngineError`] so that batch
//! APIs can isolate failures: one bad job yields one `Err` slot in the
//! output vector and never poisons its neighbours.

use std::error::Error;
use std::fmt;

use quclear_circuit::qasm::ParseQasmError;
use quclear_core::AbsorptionError;

/// Errors produced by the compilation engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// The QASM source of a [`crate::Engine::compile_qasm`] /
    /// [`crate::Engine::bind_qasm`] call failed to parse.
    QasmParse(ParseQasmError),
    /// The rotations of one program act on different register sizes.
    InconsistentQubitCounts {
        /// Register size of the first rotation.
        expected: usize,
        /// Register size of the offending rotation.
        found: usize,
        /// Index of the offending rotation within the program.
        index: usize,
    },
    /// `bind` was called with the wrong number of angles.
    AngleCountMismatch {
        /// Number of parameters of the template (one per input rotation).
        expected: usize,
        /// Number of angles supplied.
        found: usize,
    },
    /// An angle was NaN or infinite.
    NonFiniteAngle {
        /// Index of the offending angle.
        index: usize,
    },
    /// The underlying compiler panicked; the panic was contained to this job.
    CompilationPanicked {
        /// The panic payload, if it was a string.
        message: String,
    },
    /// The program's extracted Clifford is not of the basis-layer + CNOT
    /// network form required for CA-Post shot post-processing
    /// ([`crate::Engine::post_process_shots`]); use observable absorption
    /// instead.
    NotAbsorbable(AbsorptionError),
    /// The request cannot be served by sampled observable estimation
    /// ([`crate::Engine::estimate_observables`]): the register exceeds the
    /// dense simulator's qubit budget, or the shot count is zero. Not
    /// transient — the same request fails the same way every time.
    NotEstimable {
        /// Human-readable reason the estimate cannot be produced.
        reason: String,
    },
    /// The request's [`crate::Deadline`] expired before the pipeline
    /// finished. The work already done is not wasted — a compilation that
    /// completes after its requester detached still populates the template
    /// cache — but this request's caller asked not to wait any longer.
    /// Transient by construction: retrying once the cache is warm (or the
    /// system less loaded) typically succeeds.
    DeadlineExceeded,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::QasmParse(inner) => write!(f, "{inner}"),
            EngineError::InconsistentQubitCounts {
                expected,
                found,
                index,
            } => write!(
                f,
                "rotation {index} acts on {found} qubits but the program started with {expected}"
            ),
            EngineError::AngleCountMismatch { expected, found } => write!(
                f,
                "template has {expected} parameters but {found} angles were supplied"
            ),
            EngineError::NonFiniteAngle { index } => {
                write!(f, "angle {index} is not finite")
            }
            EngineError::CompilationPanicked { message } => {
                write!(f, "compilation panicked: {message}")
            }
            EngineError::NotAbsorbable(inner) => {
                write!(f, "shot post-processing is not available: {inner}")
            }
            EngineError::NotEstimable { reason } => {
                write!(f, "sampled estimation is not available: {reason}")
            }
            EngineError::DeadlineExceeded => {
                write!(f, "request deadline exceeded before compilation finished")
            }
        }
    }
}

impl Error for EngineError {}

impl From<ParseQasmError> for EngineError {
    fn from(inner: ParseQasmError) -> Self {
        EngineError::QasmParse(inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_numbers() {
        let e = EngineError::AngleCountMismatch {
            expected: 4,
            found: 2,
        };
        let text = e.to_string();
        assert!(text.contains('4') && text.contains('2'));

        let e = EngineError::InconsistentQubitCounts {
            expected: 3,
            found: 5,
            index: 7,
        };
        let text = e.to_string();
        assert!(text.contains('3') && text.contains('5') && text.contains('7'));
    }
}

//! `quclear-engine`: a high-throughput compilation engine on top of
//! [`quclear_core`].
//!
//! QuCLEAR's Clifford Extraction is *angle-independent*: the extracted
//! Clifford and the optimized circuit's structure are functions of the Pauli
//! axes alone. Variational workloads (VQE, QAOA) recompile the same
//! structure thousands of times per parameter sweep — so this crate compiles
//! each structure **once** and rebinds angles in `O(gates)`:
//!
//! * [`ProgramFingerprint`] — a fast 128-bit structural hash of a rotation
//!   program plus its [`quclear_core::QuClearConfig`], ignoring angles;
//! * [`CompiledTemplate`] — one extraction, many [`CompiledTemplate::bind`]
//!   calls, each gate-for-gate equivalent to a from-scratch compile;
//! * [`Engine`] — a thread-safe LRU template cache with hit/miss/eviction
//!   counters ([`EngineStats`]);
//! * [`Engine::compile_batch`] / [`Engine::sweep`] — parallel batch
//!   compilation with deterministic output ordering and per-job error
//!   isolation;
//! * [`Engine::compile_qasm`] / [`Engine::bind_qasm`] — QASM ingestion:
//!   OpenQASM 2.0 text is parsed, lifted into a rotation program
//!   ([`quclear_core::lift()`]) and served through the same template cache,
//!   with the lifted circuit's trailing Clifford composed into the result.
//!
//! # Examples
//!
//! A VQE-style parameter sweep:
//!
//! ```
//! use quclear_engine::Engine;
//! use quclear_pauli::PauliRotation;
//!
//! let engine = Engine::new(64);
//! let ansatz = vec![
//!     PauliRotation::parse("XXYI", 0.0)?,
//!     PauliRotation::parse("ZZII", 0.0)?,
//!     PauliRotation::parse("IYYX", 0.0)?,
//! ];
//! let angle_sets: Vec<Vec<f64>> = (0..100)
//!     .map(|step| vec![0.01 * step as f64, 0.4, -0.02 * step as f64])
//!     .collect();
//! let results = engine.sweep(&ansatz, &angle_sets)?;
//! assert_eq!(results.len(), 100);
//! assert_eq!(engine.stats().misses, 1); // one extraction served the sweep
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod deadline;
mod engine;
mod error;
mod fingerprint;
mod lru;
mod sharded;
pub mod singleflight;
mod sync;
mod template;

pub use deadline::Deadline;
pub use engine::{
    group_shot_seed, BatchJob, Engine, EngineStats, EstimateResult, DEFAULT_CACHE_CAPACITY,
    DEFAULT_CACHE_SHARDS, ENGINE_SINGLEFLIGHT_METRIC, ENGINE_STAGE_METRIC, MAX_ESTIMABLE_QUBITS,
};
pub use error::EngineError;
pub use fingerprint::ProgramFingerprint;
pub use lru::LruCache;
pub use sharded::ShardedCache;
pub use singleflight::SingleFlight;
pub use template::CompiledTemplate;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Engine>();
        assert_send_sync::<EngineStats>();
        assert_send_sync::<CompiledTemplate>();
        assert_send_sync::<ProgramFingerprint>();
        assert_send_sync::<EngineError>();
        assert_send_sync::<BatchJob>();
        assert_send_sync::<Deadline>();
    }
}

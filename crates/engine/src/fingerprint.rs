//! Angle-independent structural fingerprints of Pauli-rotation programs.
//!
//! QuCLEAR's Clifford Extraction depends only on the rotation *axes* (and
//! the pipeline configuration), never on the rotation angles — that is what
//! makes compiled templates reusable across a parameter sweep. The
//! [`ProgramFingerprint`] captures exactly that structural information:
//!
//! * the register size,
//! * the ordered sequence of signed Pauli axes (X/Z symplectic words plus
//!   the axis sign), and
//! * every field of the [`QuClearConfig`] that influences compilation.
//!
//! Two programs with the same axes and different angles hash identically;
//! flipping the sign of one axis, reordering rotations, or changing any
//! config switch changes the fingerprint.
//!
//! The digest is 128 bits built from two independent 64-bit mixing lanes, so
//! accidental collisions are negligible for any realistic cache population
//! (the construction is *not* adversarially collision-resistant; the cache
//! is a compiler memo table, not a security boundary).

use std::fmt;

use quclear_core::QuClearConfig;
use quclear_pauli::{PauliRotation, SignedPauli};

/// A 128-bit angle-independent structural hash of a rotation program plus
/// its pipeline configuration.
///
/// # Examples
///
/// ```
/// use quclear_core::QuClearConfig;
/// use quclear_engine::ProgramFingerprint;
/// use quclear_pauli::PauliRotation;
///
/// let config = QuClearConfig::default();
/// let a = [PauliRotation::parse("ZZXY", 0.1)?];
/// let b = [PauliRotation::parse("ZZXY", -2.7)?];
/// let c = [PauliRotation::parse("ZZXX", 0.1)?];
/// assert_eq!(
///     ProgramFingerprint::of_program(&a, &config),
///     ProgramFingerprint::of_program(&b, &config),
/// );
/// assert_ne!(
///     ProgramFingerprint::of_program(&a, &config),
///     ProgramFingerprint::of_program(&c, &config),
/// );
/// # Ok::<(), quclear_pauli::ParsePauliError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProgramFingerprint {
    hi: u64,
    lo: u64,
}

impl ProgramFingerprint {
    /// Fingerprints a program of (unsigned-axis) Pauli rotations.
    ///
    /// The rotation angles are deliberately ignored; only the axes enter the
    /// hash. The axes are treated as positive — use [`Self::of_axes`] for
    /// programs whose terms carry structural signs.
    #[must_use]
    pub fn of_program(program: &[PauliRotation], config: &QuClearConfig) -> Self {
        let mut hasher = Lanes::new();
        hash_config(&mut hasher, config);
        // The register size must enter the hash explicitly: BitVec words are
        // zero-padded, so e.g. "ZZ" and "ZZI" share identical backing words.
        hasher.write_u64(program.first().map_or(0, PauliRotation::num_qubits) as u64);
        hasher.write_u64(program.len() as u64);
        for rotation in program {
            hash_axis(
                &mut hasher,
                rotation.pauli().x_bits().words(),
                rotation.pauli().z_bits().words(),
                false,
            );
        }
        hasher.finish()
    }

    /// Fingerprints a program given as signed Pauli axes.
    ///
    /// The sign of each axis is structural (it flips the sign of the bound
    /// angle), so `-ZZ` and `+ZZ` produce different fingerprints.
    #[must_use]
    pub fn of_axes(axes: &[SignedPauli], config: &QuClearConfig) -> Self {
        let mut hasher = Lanes::new();
        hash_config(&mut hasher, config);
        hasher.write_u64(axes.first().map_or(0, SignedPauli::num_qubits) as u64);
        hasher.write_u64(axes.len() as u64);
        for axis in axes {
            hash_axis(
                &mut hasher,
                axis.pauli().x_bits().words(),
                axis.pauli().z_bits().words(),
                axis.is_negative(),
            );
        }
        hasher.finish()
    }

    /// The digest as one 128-bit integer.
    #[must_use]
    pub fn as_u128(&self) -> u128 {
        (u128::from(self.hi) << 64) | u128::from(self.lo)
    }
}

impl fmt::Debug for ProgramFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ProgramFingerprint({self})")
    }
}

impl fmt::Display for ProgramFingerprint {
    /// Renders the digest as 32 hex digits.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

fn hash_axis(hasher: &mut Lanes, x_words: &[u64], z_words: &[u64], negative: bool) {
    // Separators make (X, Z) framing unambiguous across register sizes.
    hasher.write_u64(0x5eed_0000_0000_000f ^ u64::from(negative));
    hasher.write_u64(x_words.len() as u64);
    for &w in x_words {
        hasher.write_u64(w);
    }
    for &w in z_words {
        hasher.write_u64(w);
    }
}

fn hash_config(hasher: &mut Lanes, config: &QuClearConfig) {
    hasher.write_u64(u64::from(config.extraction.recursive_tree));
    hasher.write_u64(u64::from(config.extraction.reorder_commuting));
    hasher.write_u64(config.extraction.lookahead_depth as u64);
    hasher.write_u64(u64::from(config.apply_peephole));
    hasher.write_u64(u64::from(config.peephole.cancel_inverses));
    hasher.write_u64(u64::from(config.peephole.merge_rotations));
    hasher.write_u64(u64::from(config.peephole.fuse_single_qubit));
    hasher.write_u64(config.peephole.max_passes as u64);
    hasher.write_u64(config.peephole.lookback as u64);
    hasher.write_u64(config.peephole.angle_tolerance.to_bits());
}

/// Two independent 64-bit mixing lanes (SplitMix64-style finalizers over an
/// FNV-like accumulation), combined into the 128-bit digest.
struct Lanes {
    a: u64,
    b: u64,
}

impl Lanes {
    fn new() -> Self {
        Lanes {
            a: 0x9ae1_6a3b_2f90_404f,
            b: 0xcbf2_9ce4_8422_2325,
        }
    }

    fn write_u64(&mut self, word: u64) {
        self.a = mix(self.a ^ word, 0xff51_afd7_ed55_8ccd);
        self.b = mix(self.b.wrapping_add(word), 0xc4ce_b9fe_1a85_ec53);
    }

    fn finish(&self) -> ProgramFingerprint {
        ProgramFingerprint {
            hi: mix(self.a, 0xc4ce_b9fe_1a85_ec53),
            lo: mix(self.b, 0xff51_afd7_ed55_8ccd),
        }
    }
}

#[inline]
fn mix(mut z: u64, multiplier: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(multiplier);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use quclear_core::QuClearConfig;

    fn rot(s: &str, angle: f64) -> PauliRotation {
        PauliRotation::parse(s, angle).unwrap()
    }

    #[test]
    fn same_axes_different_angles_collide() {
        let config = QuClearConfig::default();
        let a = [rot("XXZZ", 0.1), rot("YIYI", 0.2)];
        let b = [rot("XXZZ", -1.9), rot("YIYI", 2.4)];
        assert_eq!(
            ProgramFingerprint::of_program(&a, &config),
            ProgramFingerprint::of_program(&b, &config)
        );
    }

    #[test]
    fn different_axes_or_order_differ() {
        let config = QuClearConfig::default();
        let a = [rot("XXZZ", 0.1), rot("YIYI", 0.2)];
        let b = [rot("XXZX", 0.1), rot("YIYI", 0.2)];
        let c = [rot("YIYI", 0.2), rot("XXZZ", 0.1)];
        assert_ne!(
            ProgramFingerprint::of_program(&a, &config),
            ProgramFingerprint::of_program(&b, &config)
        );
        assert_ne!(
            ProgramFingerprint::of_program(&a, &config),
            ProgramFingerprint::of_program(&c, &config)
        );
    }

    #[test]
    fn signs_are_structural() {
        let config = QuClearConfig::default();
        let plus: SignedPauli = "+ZZ".parse().unwrap();
        let minus: SignedPauli = "-ZZ".parse().unwrap();
        assert_ne!(
            ProgramFingerprint::of_axes(std::slice::from_ref(&plus), &config),
            ProgramFingerprint::of_axes(&[minus], &config)
        );
        // Positive signed axes agree with the unsigned-program hash.
        assert_eq!(
            ProgramFingerprint::of_axes(&[plus], &config),
            ProgramFingerprint::of_program(&[rot("ZZ", 0.7)], &config)
        );
    }

    #[test]
    fn config_changes_the_key() {
        let program = [rot("XYZ", 0.4)];
        let full = QuClearConfig::default();
        let bare = QuClearConfig::without_peephole();
        assert_ne!(
            ProgramFingerprint::of_program(&program, &full),
            ProgramFingerprint::of_program(&program, &bare)
        );
    }

    #[test]
    fn register_size_is_part_of_the_key() {
        // "ZZ" and "ZZI" share identical zero-padded backing words; only the
        // explicit register-size word separates them.
        let config = QuClearConfig::default();
        assert_ne!(
            ProgramFingerprint::of_program(&[rot("ZZ", 0.1)], &config),
            ProgramFingerprint::of_program(&[rot("ZZI", 0.1)], &config)
        );
    }

    #[test]
    fn register_size_framing_is_unambiguous() {
        // One 70-qubit axis vs. the "same words" split across two axes must
        // not collide (this is what the separators protect against).
        let config = QuClearConfig::default();
        let wide = [rot(&"Z".repeat(70), 0.1)];
        let narrow = [rot(&"Z".repeat(35), 0.1), rot(&"Z".repeat(35), 0.1)];
        assert_ne!(
            ProgramFingerprint::of_program(&wide, &config),
            ProgramFingerprint::of_program(&narrow, &config)
        );
    }

    #[test]
    fn display_is_32_hex_digits() {
        let config = QuClearConfig::default();
        let fp = ProgramFingerprint::of_program(&[rot("X", 0.1)], &config);
        let text = fp.to_string();
        assert_eq!(text.len(), 32);
        assert!(text.chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(u128::from_str_radix(&text, 16).unwrap(), fp.as_u128());
    }
}

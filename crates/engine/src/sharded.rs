//! A sharded, read-mostly template cache.
//!
//! The engine's original cache was one `Mutex<LruCache>`: every lookup —
//! including the overwhelmingly common *hit* — took the same global lock and
//! mutated the recency list, so ≥32-thread batch workloads serialized on a
//! single cache line. This module splits the cache two ways:
//!
//! * **Sharding** — entries are distributed over `shards` independent
//!   sub-caches by key hash, so threads working on *different* program
//!   structures take different locks.
//! * **Read-mostly fast path** — each shard is an [`RwLock`] over a hash
//!   map whose entries carry an atomic last-used stamp. A hit takes the
//!   shard's *read* lock (shared, never exclusive) and bumps the stamp with
//!   a relaxed atomic store; threads hammering the *same* hot template —
//!   the parameter-sweep pattern — proceed fully in parallel. Only inserts
//!   and evictions take the write lock.
//!
//! Capacity is **global**: shards share one budget tracked by an atomic
//! counter, so a handful of entries never thrash however they hash.
//! When the cache is full, an insert evicts the least-recently-used entry
//! of its own shard (stamps come from one global monotone counter); in the
//! rare case that the inserting shard is empty, the globally oldest entry
//! is evicted instead. With a single shard this degenerates to exact LRU.
//!
//! # Poison recovery
//!
//! Every lock acquisition recovers from poisoning instead of propagating it
//! ([`PoisonError::into_inner`]). A long-running multi-client process must
//! not let one panicked request disable a shard forever: before this, a
//! panic while a shard's write lock was held poisoned the lock, and every
//! later request hashing to that shard panicked again on the acquisition —
//! a permanent, cascading outage of 1/`shards` of the cache.
//!
//! Recovery is sound here because the shard map is **structurally valid at
//! every panic point**. The only code that can unwind while a shard lock is
//! held is (a) the standard `HashMap` operations themselves, which leave the
//! map valid on unwind, and (b) `drop` of an evicted/replaced value — and
//! every such drop is sequenced *after* the map mutation and its `len`
//! bookkeeping have both completed (see `insert`/`clear`), so the map and
//! the shared `len` counter stay consistent even if a value's destructor
//! panics. The worst case is a recency stamp that was never bumped, which
//! only perturbs LRU order.

use crate::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use crate::sync::{Arc, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::collections::HashMap;
use std::hash::{BuildHasher, Hash, RandomState};

/// Acquires a read lock, recovering from poisoning (see the module docs).
fn read_lock<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(PoisonError::into_inner)
}

/// Acquires a write lock, recovering from poisoning (see the module docs).
fn write_lock<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(PoisonError::into_inner)
}

/// A value plus its last-used stamp.
struct Entry<V> {
    value: Arc<V>,
    last_used: AtomicU64,
}

/// One independent sub-cache.
struct Shard<V, K> {
    map: RwLock<HashMap<K, Entry<V>>>,
}

/// A sharded LRU-ish cache holding `Arc`ed values.
///
/// Lookups take a shard read lock only; inserts take the shard write lock.
/// Lock poisoning is recovered from, never propagated — a panicking request
/// cannot take a shard out of service. See the module docs for the design.
pub struct ShardedCache<K, V> {
    shards: Vec<Shard<V, K>>,
    /// Shared capacity across all shards.
    capacity: usize,
    /// Total entries across all shards (kept in sync under shard locks).
    len: AtomicUsize,
    /// Global recency clock; strictly increasing across all shards.
    clock: AtomicU64,
    hasher: RandomState,
}

impl<K: Eq + Hash + Clone, V> ShardedCache<K, V> {
    /// Creates a cache of at most `capacity` entries spread over `shards`
    /// sub-caches. Both are clamped to at least 1, and the shard count never
    /// exceeds the capacity.
    pub fn new(capacity: usize, shards: usize) -> Self {
        let capacity = capacity.max(1);
        let shards = shards.clamp(1, capacity);
        ShardedCache {
            shards: (0..shards)
                .map(|_| Shard {
                    map: RwLock::new(HashMap::new()),
                })
                .collect(),
            capacity,
            len: AtomicUsize::new(0),
            clock: AtomicU64::new(0),
            hasher: RandomState::new(),
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The configured total capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of cached entries across all shards.
    pub fn len(&self) -> usize {
        // ordering: Relaxed — advisory size; the value is only exact while
        // the relevant shard locks are held (readers tolerate staleness).
        self.len.load(Ordering::Relaxed)
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn shard(&self, key: &K) -> &Shard<V, K> {
        let h = self.hasher.hash_one(key) as usize;
        &self.shards[h % self.shards.len()]
    }

    fn tick(&self) -> u64 {
        // ordering: Relaxed — stamp uniqueness comes from the RMW's
        // atomicity; stamps order *recency*, they synchronize nothing.
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Looks up `key`, refreshing its recency stamp. Takes only the shard's
    /// read lock — concurrent hits (same or different keys) never contend
    /// exclusively.
    pub fn get(&self, key: &K) -> Option<Arc<V>> {
        let map = read_lock(&self.shard(key).map);
        let entry = map.get(key)?;
        // ordering: Relaxed — a recency hint; a racing stale store only
        // perturbs LRU victim choice, never correctness.
        entry.last_used.store(self.tick(), Ordering::Relaxed);
        Some(Arc::clone(&entry.value))
    }

    /// Inserts or replaces `key`, returning the key evicted to make room
    /// (if the cache was full) — replacing an existing key is not an
    /// eviction.
    pub fn insert(&self, key: K, value: Arc<V>) -> Option<K> {
        let shard = self.shard(&key);
        let mut map = write_lock(&shard.map);
        let stamp = self.tick();
        if let Some(entry) = map.get_mut(&key) {
            // Swap rather than assign: the old value's destructor must run
            // *after* the map is back in its final state, so a panicking
            // `Drop` cannot leave the shard inconsistent under a (recovered)
            // poisoned lock.
            let old = std::mem::replace(&mut entry.value, value);
            // ordering: Relaxed — recency hint, written under the shard
            // write lock anyway.
            entry.last_used.store(stamp, Ordering::Relaxed);
            drop(map);
            drop(old);
            return None;
        }
        // Reserve the slot *before* deciding about eviction: concurrent
        // inserts into different shards each observe the true running
        // total, so exactly the inserts that push past capacity evict.
        // ordering: Relaxed — the RMW's atomicity hands every insert a
        // distinct `prior`; the eviction decision uses the returned value,
        // not cross-thread visibility of other data.
        let prior = self.len.fetch_add(1, Ordering::Relaxed);
        let mut evicted = None;
        // The victim's value is parked here and dropped only after the map
        // and `len` are consistent and the lock is released.
        let mut victim_value = None;
        if prior >= self.capacity {
            // Prefer a victim in the shard whose lock is already held.
            if let Some(lru) = lru_key(&map) {
                victim_value = map.remove(&lru);
                // ordering: Relaxed — paired bookkeeping for the removal
                // above, both under this shard's write lock.
                self.len.fetch_sub(1, Ordering::Relaxed);
                evicted = Some(lru);
            }
        }
        map.insert(
            key,
            Entry {
                value,
                last_used: AtomicU64::new(stamp),
            },
        );
        drop(map);
        drop(victim_value);
        if prior >= self.capacity && evicted.is_none() {
            // The inserting shard was empty; evict the globally oldest
            // entry instead (one shard lock at a time, so no deadlock).
            evicted = self.evict_global_lru();
        }
        evicted
    }

    /// Evicts the entry with the globally smallest recency stamp, returning
    /// its key. The victim is located under read locks and re-checked under
    /// its shard's write lock; a concurrently vanished victim is retried
    /// until the cache is back within budget.
    fn evict_global_lru(&self) -> Option<K> {
        // Bounded retries: each failed round means another thread removed
        // the chosen victim (itself shrinking the cache) in the window.
        for _ in 0..=self.shards.len() {
            // ordering: Relaxed — over-budget probe for the retry loop; the
            // actual removal below re-checks under the shard write lock.
            if self.len.load(Ordering::Relaxed) <= self.capacity {
                return None;
            }
            let mut victim: Option<(u64, usize, K)> = None;
            for (idx, shard) in self.shards.iter().enumerate() {
                let map = read_lock(&shard.map);
                for (k, e) in map.iter() {
                    // ordering: Relaxed — recency hint read; an imprecise
                    // stamp only shifts which entry gets evicted.
                    let stamp = e.last_used.load(Ordering::Relaxed);
                    if victim.as_ref().is_none_or(|(s, _, _)| stamp < *s) {
                        victim = Some((stamp, idx, k.clone()));
                    }
                }
            }
            let (_, idx, key) = victim?;
            let mut map = write_lock(&self.shards[idx].map);
            if let Some(removed) = map.remove(&key) {
                // ordering: Relaxed — paired bookkeeping for the removal
                // above, both under this shard's write lock.
                self.len.fetch_sub(1, Ordering::Relaxed);
                drop(map);
                drop(removed);
                return Some(key);
            }
        }
        None
    }

    /// Removes every entry, keeping capacity and shard structure.
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut map = write_lock(&shard.map);
            // Detach the entries before decrementing `len` and before any
            // value destructor can run: the shard map is already empty (and
            // consistent with `len`) when the drops happen outside the lock.
            let detached = std::mem::take(&mut *map);
            // ordering: Relaxed — bookkeeping for the take above, under the
            // shard write lock.
            self.len.fetch_sub(detached.len(), Ordering::Relaxed);
            drop(map);
            drop(detached);
        }
    }

    /// Keys from most to least recently used (diagnostics/tests; takes all
    /// shard read locks in turn).
    pub fn keys_by_recency(&self) -> Vec<K> {
        let mut stamped: Vec<(u64, K)> = Vec::new();
        for shard in &self.shards {
            let map = read_lock(&shard.map);
            for (k, e) in map.iter() {
                // ordering: Relaxed — diagnostics read of the recency hint.
                stamped.push((e.last_used.load(Ordering::Relaxed), k.clone()));
            }
        }
        stamped.sort_by_key(|(stamp, _)| std::cmp::Reverse(*stamp));
        stamped.into_iter().map(|(_, k)| k).collect()
    }
}

/// The key with the smallest recency stamp in one shard map.
fn lru_key<K: Clone, V>(map: &HashMap<K, Entry<V>>) -> Option<K> {
    map.iter()
        // ordering: Relaxed — recency hint; imprecision only shifts the
        // victim choice.
        .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
        .map(|(k, _)| k.clone())
}

impl<K, V> std::fmt::Debug for ShardedCache<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCache")
            .field("shards", &self.shards.len())
            .field("capacity", &self.capacity)
            // ordering: Relaxed — Debug output.
            .field("len", &self.len.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_and_insert_roundtrip() {
        let cache: ShardedCache<u32, u32> = ShardedCache::new(8, 4);
        assert!(cache.is_empty());
        assert_eq!(cache.get(&1), None);
        cache.insert(1, Arc::new(10));
        cache.insert(2, Arc::new(20));
        assert_eq!(cache.get(&1).as_deref(), Some(&10));
        assert_eq!(cache.get(&2).as_deref(), Some(&20));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn single_shard_evicts_exact_lru() {
        let cache: ShardedCache<&str, i32> = ShardedCache::new(2, 1);
        cache.insert("a", Arc::new(1));
        cache.insert("b", Arc::new(2));
        cache.get(&"a"); // freshen a; b becomes LRU
        assert_eq!(cache.insert("c", Arc::new(3)), Some("b"));
        assert_eq!(cache.get(&"b"), None);
        assert_eq!(cache.keys_by_recency(), vec!["c", "a"]);
    }

    #[test]
    fn replacement_is_not_eviction() {
        let cache: ShardedCache<&str, i32> = ShardedCache::new(1, 1);
        assert_eq!(cache.insert("a", Arc::new(1)), None);
        assert_eq!(cache.insert("a", Arc::new(2)), None);
        assert_eq!(cache.get(&"a").as_deref(), Some(&2));
        assert_eq!(cache.insert("b", Arc::new(3)), Some("a"));
    }

    #[test]
    fn shard_count_is_clamped_to_capacity() {
        let cache: ShardedCache<u32, u32> = ShardedCache::new(2, 64);
        assert_eq!(cache.num_shards(), 2);
        assert!(cache.capacity() >= 2);
        let zero: ShardedCache<u32, u32> = ShardedCache::new(0, 0);
        assert_eq!(zero.num_shards(), 1);
        assert_eq!(zero.capacity(), 1);
    }

    #[test]
    fn few_entries_never_thrash_regardless_of_distribution() {
        // Global capacity: 5 entries in a 16-entry cache must all stay
        // resident even if they hash into the same shard.
        let cache: ShardedCache<u32, u32> = ShardedCache::new(16, 16);
        for round in 0..4 {
            for i in 0..5 {
                if round == 0 {
                    assert_eq!(cache.insert(i, Arc::new(i)), None);
                } else {
                    assert_eq!(cache.get(&i).as_deref(), Some(&i), "round {round} key {i}");
                }
            }
        }
        assert_eq!(cache.len(), 5);
    }

    #[test]
    fn clear_empties_all_shards() {
        let cache: ShardedCache<u32, u32> = ShardedCache::new(16, 4);
        for i in 0..10 {
            cache.insert(i, Arc::new(i));
        }
        assert_eq!(cache.len(), 10);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.get(&3), None);
    }

    #[test]
    fn capacity_bounds_hold_under_churn() {
        let cache: ShardedCache<u32, u32> = ShardedCache::new(8, 4);
        for i in 0..1000 {
            cache.insert(i, Arc::new(i));
        }
        assert!(cache.len() <= cache.capacity());
        assert!(cache.capacity() <= 8);
    }

    #[test]
    fn concurrent_reads_and_writes_are_safe() {
        let cache: Arc<ShardedCache<u32, u32>> = Arc::new(ShardedCache::new(64, 8));
        std::thread::scope(|scope| {
            for t in 0..8u32 {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..200u32 {
                        let key = (t * 7 + i) % 96;
                        if let Some(v) = cache.get(&key) {
                            assert_eq!(*v, key);
                        } else {
                            cache.insert(key, Arc::new(key));
                        }
                    }
                });
            }
        });
        assert!(cache.len() <= cache.capacity());
    }

    /// Poisons the shard holding `key` by panicking on a scoped thread while
    /// that shard's write lock is held — the exact state a panicked request
    /// used to leave behind.
    fn poison_shard_of(cache: &ShardedCache<u32, u32>, key: u32) {
        let shard = cache.shard(&key);
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| {
                let _guard = shard.map.write().unwrap();
                panic!("deliberate poison");
            });
            assert!(handle.join().is_err());
        });
        assert!(
            shard.map.read().is_err(),
            "the shard lock must actually be poisoned for this test to mean anything"
        );
    }

    #[test]
    fn poisoned_shard_keeps_serving() {
        // One shard so every key exercises the poisoned lock.
        let cache: ShardedCache<u32, u32> = ShardedCache::new(8, 1);
        cache.insert(1, Arc::new(10));
        poison_shard_of(&cache, 1);

        // Reads, writes, replacement, eviction and clear must all keep
        // working on the poisoned shard.
        assert_eq!(cache.get(&1).as_deref(), Some(&10), "read after poison");
        cache.insert(2, Arc::new(20));
        assert_eq!(cache.get(&2).as_deref(), Some(&20), "insert after poison");
        cache.insert(1, Arc::new(11));
        assert_eq!(cache.get(&1).as_deref(), Some(&11), "replace after poison");
        for i in 3..20 {
            cache.insert(i, Arc::new(i * 10));
        }
        assert!(cache.len() <= cache.capacity(), "eviction after poison");
        cache.clear();
        assert!(cache.is_empty(), "clear after poison");
    }

    #[test]
    fn poisoned_shard_recovers_under_concurrency() {
        let cache: Arc<ShardedCache<u32, u32>> = Arc::new(ShardedCache::new(64, 1));
        poison_shard_of(&cache, 0);
        std::thread::scope(|scope| {
            for t in 0..8u32 {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..100u32 {
                        let key = (t * 13 + i) % 48;
                        if let Some(v) = cache.get(&key) {
                            assert_eq!(*v, key);
                        } else {
                            cache.insert(key, Arc::new(key));
                        }
                    }
                });
            }
        });
        assert!(cache.len() <= cache.capacity());
    }

    /// A value whose destructor panics once: the production-shaped poisoning
    /// vector (an evicted template's drop unwinding under the shard write
    /// lock) must not take the shard down.
    struct PanicOnDrop(bool);

    impl Drop for PanicOnDrop {
        fn drop(&mut self) {
            if self.0 && !std::thread::panicking() {
                panic!("destructor panics");
            }
        }
    }

    #[test]
    fn panicking_value_drop_does_not_disable_the_cache() {
        let cache: Arc<ShardedCache<u32, PanicOnDrop>> = Arc::new(ShardedCache::new(1, 1));
        cache.insert(1, Arc::new(PanicOnDrop(true)));
        // Evicting key 1 drops the panicking value. The drop now happens
        // after the map and `len` are consistent, so even though the panic
        // propagates to this caller, the cache stays valid.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.insert(2, Arc::new(PanicOnDrop(false)));
        }));
        assert!(result.is_err(), "the destructor panic must surface");
        // The cache still serves: key 2 resident, len consistent, further
        // inserts and lookups fine.
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&2).is_some());
        cache.insert(3, Arc::new(PanicOnDrop(false)));
        assert!(cache.get(&3).is_some());
        assert_eq!(cache.len(), 1);
    }
}

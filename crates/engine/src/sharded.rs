//! A sharded, read-mostly template cache.
//!
//! The engine's original cache was one `Mutex<LruCache>`: every lookup —
//! including the overwhelmingly common *hit* — took the same global lock and
//! mutated the recency list, so ≥32-thread batch workloads serialized on a
//! single cache line. This module splits the cache two ways:
//!
//! * **Sharding** — entries are distributed over `shards` independent
//!   sub-caches by key hash, so threads working on *different* program
//!   structures take different locks.
//! * **Read-mostly fast path** — each shard is an [`RwLock`] over a hash
//!   map whose entries carry an atomic last-used stamp. A hit takes the
//!   shard's *read* lock (shared, never exclusive) and bumps the stamp with
//!   a relaxed atomic store; threads hammering the *same* hot template —
//!   the parameter-sweep pattern — proceed fully in parallel. Only inserts
//!   and evictions take the write lock.
//!
//! Capacity is **global**: shards share one budget tracked by an atomic
//! counter, so a handful of entries never thrash however they hash.
//! When the cache is full, an insert evicts the least-recently-used entry
//! of its own shard (stamps come from one global monotone counter); in the
//! rare case that the inserting shard is empty, the globally oldest entry
//! is evicted instead. With a single shard this degenerates to exact LRU.

use std::collections::HashMap;
use std::hash::{BuildHasher, Hash, RandomState};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

/// A value plus its last-used stamp.
struct Entry<V> {
    value: Arc<V>,
    last_used: AtomicU64,
}

/// One independent sub-cache.
struct Shard<V, K> {
    map: RwLock<HashMap<K, Entry<V>>>,
}

/// A sharded LRU-ish cache holding `Arc`ed values.
///
/// Lookups take a shard read lock only; inserts take the shard write lock.
/// See the module docs for the design.
pub struct ShardedCache<K, V> {
    shards: Vec<Shard<V, K>>,
    /// Shared capacity across all shards.
    capacity: usize,
    /// Total entries across all shards (kept in sync under shard locks).
    len: AtomicUsize,
    /// Global recency clock; strictly increasing across all shards.
    clock: AtomicU64,
    hasher: RandomState,
}

impl<K: Eq + Hash + Clone, V> ShardedCache<K, V> {
    /// Creates a cache of at most `capacity` entries spread over `shards`
    /// sub-caches. Both are clamped to at least 1, and the shard count never
    /// exceeds the capacity.
    pub fn new(capacity: usize, shards: usize) -> Self {
        let capacity = capacity.max(1);
        let shards = shards.clamp(1, capacity);
        ShardedCache {
            shards: (0..shards)
                .map(|_| Shard {
                    map: RwLock::new(HashMap::new()),
                })
                .collect(),
            capacity,
            len: AtomicUsize::new(0),
            clock: AtomicU64::new(0),
            hasher: RandomState::new(),
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The configured total capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of cached entries across all shards.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn shard(&self, key: &K) -> &Shard<V, K> {
        let h = self.hasher.hash_one(key) as usize;
        &self.shards[h % self.shards.len()]
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Looks up `key`, refreshing its recency stamp. Takes only the shard's
    /// read lock — concurrent hits (same or different keys) never contend
    /// exclusively.
    pub fn get(&self, key: &K) -> Option<Arc<V>> {
        let map = self.shard(key).map.read().expect("shard poisoned");
        let entry = map.get(key)?;
        entry.last_used.store(self.tick(), Ordering::Relaxed);
        Some(Arc::clone(&entry.value))
    }

    /// Inserts or replaces `key`, returning the key evicted to make room
    /// (if the cache was full) — replacing an existing key is not an
    /// eviction.
    pub fn insert(&self, key: K, value: Arc<V>) -> Option<K> {
        let shard = self.shard(&key);
        let mut map = shard.map.write().expect("shard poisoned");
        let stamp = self.tick();
        if let Some(entry) = map.get_mut(&key) {
            entry.value = value;
            entry.last_used.store(stamp, Ordering::Relaxed);
            return None;
        }
        // Reserve the slot *before* deciding about eviction: concurrent
        // inserts into different shards each observe the true running
        // total, so exactly the inserts that push past capacity evict.
        let prior = self.len.fetch_add(1, Ordering::Relaxed);
        let mut evicted = None;
        if prior >= self.capacity {
            // Prefer a victim in the shard whose lock is already held.
            if let Some(lru) = lru_key(&map) {
                map.remove(&lru);
                self.len.fetch_sub(1, Ordering::Relaxed);
                evicted = Some(lru);
            }
        }
        map.insert(
            key,
            Entry {
                value,
                last_used: AtomicU64::new(stamp),
            },
        );
        drop(map);
        if prior >= self.capacity && evicted.is_none() {
            // The inserting shard was empty; evict the globally oldest
            // entry instead (one shard lock at a time, so no deadlock).
            evicted = self.evict_global_lru();
        }
        evicted
    }

    /// Evicts the entry with the globally smallest recency stamp, returning
    /// its key. The victim is located under read locks and re-checked under
    /// its shard's write lock; a concurrently vanished victim is retried
    /// until the cache is back within budget.
    fn evict_global_lru(&self) -> Option<K> {
        // Bounded retries: each failed round means another thread removed
        // the chosen victim (itself shrinking the cache) in the window.
        for _ in 0..=self.shards.len() {
            if self.len.load(Ordering::Relaxed) <= self.capacity {
                return None;
            }
            let mut victim: Option<(u64, usize, K)> = None;
            for (idx, shard) in self.shards.iter().enumerate() {
                let map = shard.map.read().expect("shard poisoned");
                for (k, e) in map.iter() {
                    let stamp = e.last_used.load(Ordering::Relaxed);
                    if victim.as_ref().is_none_or(|(s, _, _)| stamp < *s) {
                        victim = Some((stamp, idx, k.clone()));
                    }
                }
            }
            let (_, idx, key) = victim?;
            let mut map = self.shards[idx].map.write().expect("shard poisoned");
            if map.remove(&key).is_some() {
                self.len.fetch_sub(1, Ordering::Relaxed);
                return Some(key);
            }
        }
        None
    }

    /// Removes every entry, keeping capacity and shard structure.
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut map = shard.map.write().expect("shard poisoned");
            self.len.fetch_sub(map.len(), Ordering::Relaxed);
            map.clear();
        }
    }

    /// Keys from most to least recently used (diagnostics/tests; takes all
    /// shard read locks in turn).
    pub fn keys_by_recency(&self) -> Vec<K> {
        let mut stamped: Vec<(u64, K)> = Vec::new();
        for shard in &self.shards {
            let map = shard.map.read().expect("shard poisoned");
            for (k, e) in map.iter() {
                stamped.push((e.last_used.load(Ordering::Relaxed), k.clone()));
            }
        }
        stamped.sort_by_key(|(stamp, _)| std::cmp::Reverse(*stamp));
        stamped.into_iter().map(|(_, k)| k).collect()
    }
}

/// The key with the smallest recency stamp in one shard map.
fn lru_key<K: Clone, V>(map: &HashMap<K, Entry<V>>) -> Option<K> {
    map.iter()
        .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
        .map(|(k, _)| k.clone())
}

impl<K, V> std::fmt::Debug for ShardedCache<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCache")
            .field("shards", &self.shards.len())
            .field("capacity", &self.capacity)
            .field("len", &self.len.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_and_insert_roundtrip() {
        let cache: ShardedCache<u32, u32> = ShardedCache::new(8, 4);
        assert!(cache.is_empty());
        assert_eq!(cache.get(&1), None);
        cache.insert(1, Arc::new(10));
        cache.insert(2, Arc::new(20));
        assert_eq!(cache.get(&1).as_deref(), Some(&10));
        assert_eq!(cache.get(&2).as_deref(), Some(&20));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn single_shard_evicts_exact_lru() {
        let cache: ShardedCache<&str, i32> = ShardedCache::new(2, 1);
        cache.insert("a", Arc::new(1));
        cache.insert("b", Arc::new(2));
        cache.get(&"a"); // freshen a; b becomes LRU
        assert_eq!(cache.insert("c", Arc::new(3)), Some("b"));
        assert_eq!(cache.get(&"b"), None);
        assert_eq!(cache.keys_by_recency(), vec!["c", "a"]);
    }

    #[test]
    fn replacement_is_not_eviction() {
        let cache: ShardedCache<&str, i32> = ShardedCache::new(1, 1);
        assert_eq!(cache.insert("a", Arc::new(1)), None);
        assert_eq!(cache.insert("a", Arc::new(2)), None);
        assert_eq!(cache.get(&"a").as_deref(), Some(&2));
        assert_eq!(cache.insert("b", Arc::new(3)), Some("a"));
    }

    #[test]
    fn shard_count_is_clamped_to_capacity() {
        let cache: ShardedCache<u32, u32> = ShardedCache::new(2, 64);
        assert_eq!(cache.num_shards(), 2);
        assert!(cache.capacity() >= 2);
        let zero: ShardedCache<u32, u32> = ShardedCache::new(0, 0);
        assert_eq!(zero.num_shards(), 1);
        assert_eq!(zero.capacity(), 1);
    }

    #[test]
    fn few_entries_never_thrash_regardless_of_distribution() {
        // Global capacity: 5 entries in a 16-entry cache must all stay
        // resident even if they hash into the same shard.
        let cache: ShardedCache<u32, u32> = ShardedCache::new(16, 16);
        for round in 0..4 {
            for i in 0..5 {
                if round == 0 {
                    assert_eq!(cache.insert(i, Arc::new(i)), None);
                } else {
                    assert_eq!(cache.get(&i).as_deref(), Some(&i), "round {round} key {i}");
                }
            }
        }
        assert_eq!(cache.len(), 5);
    }

    #[test]
    fn clear_empties_all_shards() {
        let cache: ShardedCache<u32, u32> = ShardedCache::new(16, 4);
        for i in 0..10 {
            cache.insert(i, Arc::new(i));
        }
        assert_eq!(cache.len(), 10);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.get(&3), None);
    }

    #[test]
    fn capacity_bounds_hold_under_churn() {
        let cache: ShardedCache<u32, u32> = ShardedCache::new(8, 4);
        for i in 0..1000 {
            cache.insert(i, Arc::new(i));
        }
        assert!(cache.len() <= cache.capacity());
        assert!(cache.capacity() <= 8);
    }

    #[test]
    fn concurrent_reads_and_writes_are_safe() {
        let cache: Arc<ShardedCache<u32, u32>> = Arc::new(ShardedCache::new(64, 8));
        std::thread::scope(|scope| {
            for t in 0..8u32 {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..200u32 {
                        let key = (t * 7 + i) % 96;
                        if let Some(v) = cache.get(&key) {
                            assert_eq!(*v, key);
                        } else {
                            cache.insert(key, Arc::new(key));
                        }
                    }
                });
            }
        });
        assert!(cache.len() <= cache.capacity());
    }
}

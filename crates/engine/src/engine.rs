//! The thread-safe compilation engine: template cache + batch front-end.

use std::panic::{catch_unwind, AssertUnwindSafe};
// Stage timing below uses the real wall clock on purpose: stage metrics
// are observability, not modeled state, and their `Instant`s never meet
// the deadline/singleflight `Instant`s from `crate::sync`.
use std::time::Instant;

use crate::sync::atomic::{AtomicBool, Ordering};
use crate::sync::{Arc, Mutex, PoisonError};

use quclear_circuit::qasm::from_qasm;
use quclear_core::{
    lift, AbsorbedObservables, LiftedProgram, MeasurementPlan, QuClearConfig, QuClearResult,
    ShotBatch,
};
use quclear_pauli::{PauliRotation, SignedPauli};
use quclear_sim::StateVector;
use quclear_telemetry::{Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

use crate::deadline::Deadline;
use crate::error::EngineError;
use crate::fingerprint::ProgramFingerprint;
use crate::sharded::ShardedCache;
use crate::singleflight::{Role, SingleFlight};
use crate::template::{CompiledTemplate, StageMetrics};

/// Metric name of the engine's per-stage latency histograms (labeled by
/// `stage`: `fingerprint`, `extract`, `bind`, `peephole`, `absorb_pre`,
/// `absorb_post`).
pub const ENGINE_STAGE_METRIC: &str = "quclear_engine_stage_duration_ns";

/// Metric name of the single-flight latency histograms (labeled by `role`:
/// `leader` — the full compile a flight leader performs — vs `waiter` — how
/// long a coalesced request blocked on someone else's flight).
pub const ENGINE_SINGLEFLIGHT_METRIC: &str = "quclear_engine_singleflight_duration_ns";

/// Default number of cached templates.
pub const DEFAULT_CACHE_CAPACITY: usize = 256;

/// Default number of cache shards (clamped down when the capacity is
/// smaller; see [`Engine::with_shards`]).
pub const DEFAULT_CACHE_SHARDS: usize = 16;

/// A point-in-time snapshot of the engine's counters.
///
/// # Staleness contract
///
/// The engine mutates its counters with relaxed atomics on the request hot
/// paths; [`Engine::stats`] reads them without stopping the world. A
/// snapshot is therefore **consistent but stale**: each field is a value the
/// counter actually held at some instant during the `stats()` call, and the
/// cross-field invariants below are guaranteed to hold *within one
/// snapshot*, but the fields need not all come from the same instant — a
/// request that completed mid-snapshot may be reflected in one counter and
/// not yet in another. Serving dashboards (`/stats` endpoints) should treat
/// a snapshot as "correct as of roughly now", not as a transactional view.
///
/// Within every snapshot:
///
/// * [`EngineStats::hit_rate`] is in `[0, 1]`,
/// * `entries <= capacity`,
/// * `coalesced_waits <= hits + misses`,
/// * every counter is monotone across successive snapshots (each counter
///   only ever increments, and `stats()` reads each one exactly once).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Template-cache hits. A lookup served by an in-flight compilation
    /// (see [`EngineStats::coalesced_waits`]) counts as a hit: it was
    /// answered without running a compilation of its own.
    pub hits: u64,
    /// Template-cache misses (each one attempted — or, for a coalesced
    /// request, shared the outcome of — a full template compilation; failed
    /// compilations count as misses too).
    pub misses: u64,
    /// Lookups that found their structure already compiling on another
    /// thread and waited for that single flight instead of racing it.
    pub coalesced_waits: u64,
    /// Templates evicted by the LRU policy.
    pub evictions: u64,
    /// Total successful `bind` operations served.
    pub binds: u64,
    /// Templates currently cached (never reported above `capacity`).
    pub entries: usize,
    /// Configured cache capacity.
    pub capacity: usize,
    /// Lane width of the bit-plane kernels, in 64-bit words (a compile-time
    /// constant of the build: the `simd` shim's `lane*` feature; `1` means
    /// the scalar fallback).
    pub lane_words: usize,
    /// Worker threads the parallel plane sweeps use when a sweep exceeds its
    /// sequential cutoff (`rayon::current_num_threads()`; `1` means every
    /// sweep runs sequentially).
    pub sweep_threads: usize,
}

impl EngineStats {
    /// Fraction of template lookups served from the cache, in `[0, 1]`.
    ///
    /// Guaranteed to stay in `[0, 1]` even for a snapshot taken while
    /// requests are mutating the counters: the ratio is computed from the
    /// two fields of *this* snapshot, not re-read from the live engine.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits.saturating_add(self.misses);
        if total == 0 {
            0.0
        } else {
            // `hits <= total` by construction; the division cannot exceed 1.
            (self.hits.min(total)) as f64 / total as f64
        }
    }

    /// Total template lookups observed (`hits + misses`).
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.hits.saturating_add(self.misses)
    }
}

/// One unit of work for [`Engine::compile_batch`].
#[derive(Clone, Debug)]
pub struct BatchJob {
    /// The rotation program (axes + default angles).
    pub program: Vec<PauliRotation>,
    /// Optional angle override; when `None` the program's own angles bind.
    pub angles: Option<Vec<f64>>,
}

impl BatchJob {
    /// A job compiled with the program's own angles.
    #[must_use]
    pub fn new(program: Vec<PauliRotation>) -> Self {
        BatchJob {
            program,
            angles: None,
        }
    }

    /// A job rebinding `program`'s structure to explicit `angles`.
    #[must_use]
    pub fn with_angles(program: Vec<PauliRotation>, angles: Vec<f64>) -> Self {
        BatchJob {
            program,
            angles: Some(angles),
        }
    }
}

/// A high-throughput compilation engine with a shared template cache.
///
/// The engine memoizes [`CompiledTemplate`]s keyed by the angle-independent
/// [`ProgramFingerprint`], so recompiling the same circuit *structure* with
/// new angles (the inner loop of VQE/QAOA parameter sweeps) costs one cheap
/// `bind` instead of a full extraction. All methods take `&self`; the engine
/// is `Send + Sync` and is typically shared behind an [`Arc`].
///
/// # Examples
///
/// ```
/// use quclear_engine::Engine;
/// use quclear_pauli::PauliRotation;
///
/// let engine = Engine::new(64);
/// let program = vec![
///     PauliRotation::parse("ZZZZ", 0.3)?,
///     PauliRotation::parse("YYXX", 0.7)?,
/// ];
/// let first = engine.compile(&program)?;   // cache miss: full extraction
/// let again = engine.compile(&program)?;   // cache hit: O(gates) rebind
/// assert_eq!(first.cnot_count(), again.cnot_count());
/// let stats = engine.stats();
/// assert_eq!((stats.hits, stats.misses), (1, 1));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Engine {
    config: QuClearConfig,
    cache: ShardedCache<ProgramFingerprint, CompiledTemplate>,
    /// Coalesces concurrent compilations of the same structure: one leader
    /// extracts, everyone else waits for its result (`singleflight`).
    inflight: SingleFlight<ProgramFingerprint, Result<Arc<CompiledTemplate>, EngineError>>,
    /// The engine's metric registry. The counters below are *handles into
    /// this registry* — `stats()` and the metrics exposition read the same
    /// atomic cells, so the two views cannot drift apart.
    metrics: Arc<MetricsRegistry>,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    coalesced_waits: Arc<Counter>,
    evictions: Arc<Counter>,
    binds: Arc<Counter>,
    cache_entries: Arc<Gauge>,
    measurement_groups: Arc<Gauge>,
    stage_fingerprint: Arc<Histogram>,
    stage_extract: Arc<Histogram>,
    stage_absorb_post: Arc<Histogram>,
    singleflight_leader: Arc<Histogram>,
    singleflight_waiter: Arc<Histogram>,
    /// Handles handed to every compiled template (bind / peephole /
    /// absorb_pre run template-side).
    template_metrics: StageMetrics,
    /// Test-support fault injection (see [`Engine::inject_lookup_panic`]).
    /// The flag makes the hot path pay one relaxed load instead of a mutex.
    fault_armed: AtomicBool,
    fault_fingerprint: Mutex<Option<ProgramFingerprint>>,
    /// Test-support compile slowdown (see [`Engine::inject_compile_delay`]).
    delay_armed: AtomicBool,
    fault_delay: Mutex<Option<(ProgramFingerprint, std::time::Duration)>>,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new(DEFAULT_CACHE_CAPACITY)
    }
}

/// Largest register [`Engine::estimate_observables`] will simulate: the
/// dense statevector simulator's own guard rail.
pub const MAX_ESTIMABLE_QUBITS: usize = 26;

/// The deterministic per-group sampling seed used by
/// [`Engine::estimate_observables`]: a SplitMix64-style mix of the request
/// seed and the group index. Public so differential tests can reproduce a
/// group's shot batch exactly.
#[must_use]
pub fn group_shot_seed(seed: u64, group: usize) -> u64 {
    let mut z = seed ^ (group as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The result of [`Engine::estimate_observables`]: per-observable sampled
/// expectations plus the grouping that produced them.
#[derive(Clone, Debug, PartialEq)]
pub struct EstimateResult {
    /// Estimated `⟨O_i⟩` in input observable order, signs included.
    pub expectations: Vec<f64>,
    /// Member indices (into the input observable list) of each commuting
    /// group; one shot batch was sampled per group.
    pub groups: Vec<Vec<usize>>,
    /// `observables / groups` — how many times fewer shot batches the
    /// grouped plan needed compared to per-observable estimation.
    pub shot_budget_divisor: f64,
}

impl Engine {
    /// Creates an engine with the default pipeline configuration and room
    /// for `capacity` cached templates (clamped to at least one), sharded
    /// over [`DEFAULT_CACHE_SHARDS`] sub-caches.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Engine::with_config(capacity, QuClearConfig::default())
    }

    /// Creates an engine compiling with an explicit pipeline configuration.
    #[must_use]
    pub fn with_config(capacity: usize, config: QuClearConfig) -> Self {
        Engine::with_shards(capacity, DEFAULT_CACHE_SHARDS, config)
    }

    /// Creates an engine with an explicit shard count.
    ///
    /// Shards trade strictness of the *global* LRU order for parallelism:
    /// lookups only ever take a per-shard read lock, and inserts only that
    /// shard's write lock. Eviction is exact LRU *within* each shard. The
    /// shard count is clamped to `[1, capacity]`; one shard gives the exact
    /// single-cache LRU semantics.
    #[must_use]
    pub fn with_shards(capacity: usize, shards: usize, config: QuClearConfig) -> Self {
        let cache = ShardedCache::new(capacity.max(1), shards);
        let metrics = Arc::new(MetricsRegistry::new());
        let stage = |name: &str| {
            metrics.histogram_labeled(
                ENGINE_STAGE_METRIC,
                "engine pipeline stage latency in nanoseconds",
                ("stage", name),
            )
        };
        let flight = |role: &str| {
            metrics.histogram_labeled(
                ENGINE_SINGLEFLIGHT_METRIC,
                "single-flight compile latency in nanoseconds, by role",
                ("role", role),
            )
        };
        metrics
            .gauge(
                "quclear_engine_cache_capacity",
                "configured template-cache capacity",
            )
            .set(cache.capacity() as i64);
        metrics
            .gauge(
                "quclear_engine_kernel_lane_words",
                "lane width of the bit-plane kernels in 64-bit words (1 = scalar fallback)",
            )
            .set(quclear_pauli::kernel_lane_words() as i64);
        metrics
            .gauge(
                "quclear_engine_sweep_threads",
                "worker threads available to the parallel plane sweeps",
            )
            .set(rayon::current_num_threads() as i64);
        Engine {
            inflight: SingleFlight::new(),
            hits: metrics.counter(
                "quclear_engine_cache_hits_total",
                "template lookups served from the cache (or a shared flight)",
            ),
            misses: metrics.counter(
                "quclear_engine_cache_misses_total",
                "template lookups that compiled (or shared a failed compile)",
            ),
            coalesced_waits: metrics.counter(
                "quclear_engine_coalesced_waits_total",
                "lookups that waited on another thread's in-flight compile",
            ),
            evictions: metrics.counter(
                "quclear_engine_cache_evictions_total",
                "templates evicted by the LRU policy",
            ),
            binds: metrics.counter(
                "quclear_engine_binds_total",
                "successful template bind operations",
            ),
            cache_entries: metrics
                .gauge("quclear_engine_cache_entries", "templates currently cached"),
            measurement_groups: metrics.gauge(
                "quclear_engine_measurement_groups",
                "commuting groups in the most recently built measurement plan",
            ),
            stage_fingerprint: stage("fingerprint"),
            stage_extract: stage("extract"),
            stage_absorb_post: stage("absorb_post"),
            singleflight_leader: flight("leader"),
            singleflight_waiter: flight("waiter"),
            template_metrics: StageMetrics {
                bind: stage("bind"),
                peephole: stage("peephole"),
                absorb_pre: stage("absorb_pre"),
                diagonalize: stage("diagonalize"),
            },
            metrics,
            config,
            cache,
            fault_armed: AtomicBool::new(false),
            fault_fingerprint: Mutex::new(None),
            delay_armed: AtomicBool::new(false),
            fault_delay: Mutex::new(None),
        }
    }

    /// The pipeline configuration used for every compilation.
    #[must_use]
    pub fn config(&self) -> &QuClearConfig {
        &self.config
    }

    /// Returns the cached template for `axes`, compiling it on a miss.
    ///
    /// Concurrent misses on the **same** structure are single-flighted: one
    /// caller runs the extraction, the others block on its flight and share
    /// the result (counted in [`EngineStats::coalesced_waits`]). Misses on
    /// *different* structures never serialize — the in-flight table is keyed
    /// by fingerprint and compilation runs outside every lock.
    ///
    /// # Errors
    ///
    /// Propagates template-compilation failures (inconsistent register
    /// sizes, contained panics). A coalesced caller receives a clone of the
    /// leader's error; failed compilations are never cached, so a later
    /// request retries from scratch.
    pub fn template(&self, axes: &[SignedPauli]) -> Result<Arc<CompiledTemplate>, EngineError> {
        self.template_with_deadline(axes, Deadline::none())
    }

    /// [`Self::template`] under a request [`Deadline`].
    ///
    /// The budget is cooperative: cache hits are always served (they cost
    /// microseconds), but a miss checks the deadline before extracting, and
    /// a coalesced waiter parks on the leader's flight **at most** until the
    /// deadline and then detaches with [`EngineError::DeadlineExceeded`]
    /// instead of waiting out an arbitrarily slow leader. The leader's
    /// flight is unaffected by a detach — its eventual template still lands
    /// in the cache, so the work a detached waiter paid for is not wasted.
    ///
    /// # Errors
    ///
    /// As [`Self::template`], plus [`EngineError::DeadlineExceeded`] once the
    /// budget is spent. A detached waiter counts as a miss (it was not
    /// answered from the cache or a shared flight) without a
    /// `coalesced_waits` increment, preserving the
    /// `coalesced_waits <= hits + misses` snapshot invariant.
    pub fn template_with_deadline(
        &self,
        axes: &[SignedPauli],
        deadline: Deadline,
    ) -> Result<Arc<CompiledTemplate>, EngineError> {
        let fingerprint_start = Instant::now();
        let fingerprint = ProgramFingerprint::of_axes(axes, &self.config);
        self.stage_fingerprint
            .record_duration(fingerprint_start.elapsed());
        self.maybe_injected_panic(&fingerprint);
        // Hit fast path: a shard *read* lock plus an atomic recency bump —
        // concurrent hits never serialize, even on the same template. Hits
        // are served even past the deadline: answering from the cache is
        // cheaper than composing the error.
        if let Some(template) = self.cache.get(&fingerprint) {
            self.hits.inc();
            return Ok(template);
        }

        let flight_start = Instant::now();
        let Some((result, role)) =
            self.inflight
                .run_with_deadline(&fingerprint, deadline.instant(), || {
                    self.compile_into_cache(fingerprint, axes, deadline)
                })
        else {
            // Detached: the leader outlived this request's budget. The
            // flight keeps running and will populate the cache; this lookup
            // was answered by neither the cache nor a shared result, so it
            // counts as a miss (and *not* as a coalesced wait).
            self.singleflight_waiter
                .record_duration(flight_start.elapsed());
            self.misses.inc();
            return Err(EngineError::DeadlineExceeded);
        };
        match role {
            Role::Led => self
                .singleflight_leader
                .record_duration(flight_start.elapsed()),
            Role::Coalesced => {
                self.singleflight_waiter
                    .record_duration(flight_start.elapsed());
                // The waiter was answered without compiling: a hit when the
                // leader succeeded, a miss when its compilation failed
                // (keeping the "misses count failed compilations"
                // convention). The hit/miss lands *before* the Release
                // increment of `coalesced_waits`, and `stats()` reads
                // `coalesced_waits` first with Acquire — so every snapshot
                // observes `coalesced_waits <= hits + misses`.
                match &result {
                    Ok(_) => self.hits.inc(),
                    Err(_) => self.misses.inc(),
                };
                // ordering: Release pairs with stats()'s Acquire read.
                self.coalesced_waits.add_ordered(1, Ordering::Release);
            }
        }
        result
    }

    /// Single-flight leader body: re-check the cache, then compile outside
    /// any lock and publish the template. Extraction is the expensive part,
    /// and concurrent misses on *different* programs must not serialize.
    fn compile_into_cache(
        &self,
        fingerprint: ProgramFingerprint,
        axes: &[SignedPauli],
        deadline: Deadline,
    ) -> Result<Arc<CompiledTemplate>, EngineError> {
        // Re-check under flight leadership: a previous leader may have
        // published the template between our cache probe and our election.
        if let Some(template) = self.cache.get(&fingerprint) {
            self.hits.inc();
            return Ok(template);
        }
        self.misses.inc();
        // Last cooperative checkpoint before the expensive extraction: a
        // leader whose budget is already spent fails fast instead of
        // compiling a template nobody is waiting for. (Waiters coalesced on
        // this flight share the error, never cache it — the next request
        // retries from scratch, exactly like any other failed compile.)
        deadline.check()?;
        self.maybe_injected_delay(&fingerprint);
        let extract_start = Instant::now();
        let compiled = contain_panics(|| CompiledTemplate::compile(axes, &self.config));
        self.stage_extract.record_duration(extract_start.elapsed());
        let mut template = compiled?;
        template.set_stage_metrics(self.template_metrics.clone());
        let template = Arc::new(template);
        // Only displacement of a different structure counts as an eviction,
        // which is exactly what the sharded insert reports.
        if self
            .cache
            .insert(fingerprint, Arc::clone(&template))
            .is_some()
        {
            self.evictions.inc();
        }
        self.cache_entries
            .set(self.cache.len().min(self.cache.capacity()) as i64);
        Ok(template)
    }

    /// Test-support fault injection: every template lookup whose structural
    /// fingerprint equals `fingerprint` panics **before** the cache is
    /// consulted, modeling an unexpected panic on the lookup path (the bug
    /// class that used to tear down whole batches and poison cache shards).
    /// Pass `None` to disarm. Hidden from docs; it exists so the panic
    /// containment of [`Self::compile_batch`] and of `quclear-serve` request
    /// workers can be exercised end-to-end without depending on a
    /// coincidental panicking input.
    #[doc(hidden)]
    pub fn inject_lookup_panic(&self, fingerprint: Option<ProgramFingerprint>) {
        *self
            .fault_fingerprint
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = fingerprint;
        self.fault_armed
            .store(fingerprint.is_some(), Ordering::Release);
    }

    /// Test-support fault injection: makes the single-flight *leader* for
    /// `fingerprint` sleep for the given duration before compiling, so
    /// coalescing tests can create a guaranteed-overlapping in-flight window
    /// instead of racing the (fast) real extraction. Pass `None` to disarm.
    /// Hidden from docs, like [`Self::inject_lookup_panic`].
    #[doc(hidden)]
    pub fn inject_compile_delay(&self, delay: Option<(ProgramFingerprint, std::time::Duration)>) {
        *self
            .fault_delay
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = delay;
        self.delay_armed.store(delay.is_some(), Ordering::Release);
    }

    /// Sleeps when a compile delay is armed for this fingerprint.
    fn maybe_injected_delay(&self, fingerprint: &ProgramFingerprint) {
        if !self.delay_armed.load(Ordering::Acquire) {
            return;
        }
        let armed = *self
            .fault_delay
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some((target, duration)) = armed {
            if target == *fingerprint {
                std::thread::sleep(duration);
            }
        }
    }

    /// Fires the injected lookup panic when armed for this fingerprint.
    /// Disarmed (the overwhelmingly common case) this is one relaxed load.
    fn maybe_injected_panic(&self, fingerprint: &ProgramFingerprint) {
        if !self.fault_armed.load(Ordering::Acquire) {
            return;
        }
        let armed = *self
            .fault_fingerprint
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if armed == Some(*fingerprint) {
            panic!("injected template-lookup panic for {fingerprint}");
        }
    }

    /// Returns the cached template for a rotation program's structure.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::template`].
    pub fn template_for(
        &self,
        program: &[PauliRotation],
    ) -> Result<Arc<CompiledTemplate>, EngineError> {
        self.template_for_with_deadline(program, Deadline::none())
    }

    /// [`Self::template_for`] under a request [`Deadline`]; see
    /// [`Self::template_with_deadline`] for the budget semantics.
    ///
    /// # Errors
    ///
    /// As [`Self::template_with_deadline`].
    pub fn template_for_with_deadline(
        &self,
        program: &[PauliRotation],
        deadline: Deadline,
    ) -> Result<Arc<CompiledTemplate>, EngineError> {
        let axes: Vec<SignedPauli> = program
            .iter()
            .map(|r| SignedPauli::positive(r.pauli().clone()))
            .collect();
        self.template_with_deadline(&axes, deadline)
    }

    /// Compiles one program, reusing a cached template when available.
    ///
    /// # Errors
    ///
    /// Propagates template and binding failures for this program.
    pub fn compile(&self, program: &[PauliRotation]) -> Result<QuClearResult, EngineError> {
        self.compile_with_deadline(program, Deadline::none())
    }

    /// [`Self::compile`] under a request [`Deadline`], checked at every
    /// stage boundary (before the template lookup resolves and again before
    /// binding).
    ///
    /// # Errors
    ///
    /// As [`Self::compile`], plus [`EngineError::DeadlineExceeded`] once the
    /// budget is spent.
    pub fn compile_with_deadline(
        &self,
        program: &[PauliRotation],
        deadline: Deadline,
    ) -> Result<QuClearResult, EngineError> {
        let template = self.template_for_with_deadline(program, deadline)?;
        deadline.check()?;
        let result = contain_panics(|| template.bind_program(program))?;
        self.binds.inc();
        Ok(result)
    }

    /// Compiles a batch of jobs in parallel.
    ///
    /// Results come back **in input order**, one per job, and failures are
    /// isolated: a malformed job produces an `Err` in its slot without
    /// affecting any other job. Jobs sharing a structure share one template
    /// through the cache (and through the single-flight table when they
    /// race).
    ///
    /// Isolation covers panics end to end: the **whole** per-job pipeline —
    /// fingerprinting, cache lookup, template compilation *and* binding —
    /// runs inside one `catch_unwind`, so a panic anywhere in one job
    /// surfaces as [`EngineError::CompilationPanicked`] in that job's slot
    /// instead of unwinding through the parallel runner and tearing down
    /// every sibling job. (Binding alone used to be wrapped; a panicking
    /// lookup — e.g. against a poisoned cache shard — killed the batch.)
    pub fn compile_batch(&self, jobs: &[BatchJob]) -> Vec<Result<QuClearResult, EngineError>> {
        self.compile_batch_with_deadline(jobs, Deadline::none())
    }

    /// [`Self::compile_batch`] under a request [`Deadline`].
    ///
    /// The budget is **shared** across the batch, not per job: `Deadline` is
    /// an absolute instant, so every job checks the same wall-clock expiry.
    /// Jobs that start after the budget is spent fail fast with
    /// [`EngineError::DeadlineExceeded`] in their slot — failure isolation
    /// works exactly as for any other per-job error, so a batch that runs
    /// out of time returns the jobs it finished plus typed errors for the
    /// rest, never a torn result.
    pub fn compile_batch_with_deadline(
        &self,
        jobs: &[BatchJob],
        deadline: Deadline,
    ) -> Vec<Result<QuClearResult, EngineError>> {
        jobs.par_iter()
            .map(|job| {
                contain_panics(|| {
                    deadline.check()?;
                    let template = self.template_for_with_deadline(&job.program, deadline)?;
                    deadline.check()?;
                    let result = match &job.angles {
                        Some(angles) => template.bind(angles),
                        None => template.bind_program(&job.program),
                    }?;
                    self.binds.inc();
                    Ok(result)
                })
            })
            .collect()
    }

    /// Parameter-sweep fast path: compiles `program`'s structure once and
    /// binds every angle set in parallel.
    ///
    /// Equivalent to a [`Self::compile_batch`] over identical structures,
    /// but pays the cache lookup once instead of per job.
    ///
    /// # Errors
    ///
    /// Returns the template error if the *structure* fails to compile;
    /// per-angle-set failures are isolated in the output vector.
    #[allow(clippy::type_complexity)]
    pub fn sweep(
        &self,
        program: &[PauliRotation],
        angle_sets: &[Vec<f64>],
    ) -> Result<Vec<Result<QuClearResult, EngineError>>, EngineError> {
        self.sweep_with_deadline(program, angle_sets, Deadline::none())
    }

    /// [`Self::sweep`] under a request [`Deadline`] shared by the template
    /// compilation and every per-angle-set bind.
    ///
    /// # Errors
    ///
    /// As [`Self::sweep`]; angle sets bound after the budget is spent get
    /// [`EngineError::DeadlineExceeded`] in their slot.
    #[allow(clippy::type_complexity)]
    pub fn sweep_with_deadline(
        &self,
        program: &[PauliRotation],
        angle_sets: &[Vec<f64>],
        deadline: Deadline,
    ) -> Result<Vec<Result<QuClearResult, EngineError>>, EngineError> {
        let template = self.template_for_with_deadline(program, deadline)?;
        let results = angle_sets
            .par_iter()
            .map(|angles| {
                deadline.check()?;
                let result = contain_panics(|| template.bind(angles))?;
                self.binds.inc();
                Ok(result)
            })
            .collect();
        Ok(results)
    }

    /// Compiles OpenQASM 2.0 text, reusing a cached template when available.
    ///
    /// The circuit is parsed ([`quclear_circuit::qasm::from_qasm`]) and
    /// lifted into a Pauli-rotation program plus a trailing Clifford
    /// ([`quclear_core::lift()`]); the rotation structure is fingerprinted and
    /// template-cached exactly like a native program, and the trailing
    /// Clifford is composed into the returned result's extracted circuit
    /// and Heisenberg map. QASM programs that differ only in rotation
    /// angles therefore share one template: the second
    /// `compile_qasm` of an ansatz costs one parse + lift + `O(gates)`
    /// bind.
    ///
    /// # Errors
    ///
    /// [`EngineError::QasmParse`] when the text does not parse; otherwise
    /// the same conditions as [`Self::compile`].
    ///
    /// # Examples
    ///
    /// ```
    /// use quclear_engine::Engine;
    ///
    /// let engine = Engine::new(16);
    /// let qasm = "
    ///     OPENQASM 2.0;
    ///     qreg q[2];
    ///     cx q[0], q[1]; rz(pi/3) q[1]; cx q[0], q[1];
    /// ";
    /// let result = engine.compile_qasm(qasm)?;
    /// assert!(result.cnot_count() <= 2);
    /// # Ok::<(), quclear_engine::EngineError>(())
    /// ```
    pub fn compile_qasm(&self, qasm: &str) -> Result<QuClearResult, EngineError> {
        self.compile_qasm_with_deadline(qasm, Deadline::none())
    }

    /// [`Self::compile_qasm`] under a request [`Deadline`], checked after
    /// the parse + lift stage and at every later stage boundary.
    ///
    /// # Errors
    ///
    /// As [`Self::compile_qasm`], plus [`EngineError::DeadlineExceeded`]
    /// once the budget is spent.
    pub fn compile_qasm_with_deadline(
        &self,
        qasm: &str,
        deadline: Deadline,
    ) -> Result<QuClearResult, EngineError> {
        let lifted = lift(&from_qasm(qasm)?);
        deadline.check()?;
        self.compile_lifted_with_deadline(&lifted, None, deadline)
    }

    /// Compiles OpenQASM 2.0 text with the rotation angles overridden.
    ///
    /// `angles[i]` replaces the angle of the i-th rotation gate of the
    /// circuit (in gate order, counting `t`/`tdg` as rotations) — the
    /// parameter-sweep fast path for QASM-origin ansätze: the structure is
    /// parsed, lifted and template-compiled once, then every angle set is
    /// an `O(gates)` bind. For more control (e.g. lifting once for many
    /// binds), use [`quclear_core::lift_qasm`] with
    /// [`Self::compile_lifted`].
    ///
    /// # Errors
    ///
    /// [`EngineError::QasmParse`] when the text does not parse;
    /// [`EngineError::AngleCountMismatch`] when `angles.len()` differs from
    /// the circuit's rotation count; otherwise as [`Self::compile`].
    pub fn bind_qasm(&self, qasm: &str, angles: &[f64]) -> Result<QuClearResult, EngineError> {
        self.bind_qasm_with_deadline(qasm, angles, Deadline::none())
    }

    /// [`Self::bind_qasm`] under a request [`Deadline`], checked after the
    /// parse + lift stage and at every later stage boundary.
    ///
    /// # Errors
    ///
    /// As [`Self::bind_qasm`], plus [`EngineError::DeadlineExceeded`] once
    /// the budget is spent.
    pub fn bind_qasm_with_deadline(
        &self,
        qasm: &str,
        angles: &[f64],
        deadline: Deadline,
    ) -> Result<QuClearResult, EngineError> {
        let lifted = lift(&from_qasm(qasm)?);
        deadline.check()?;
        self.compile_lifted_with_deadline(&lifted, Some(angles), deadline)
    }

    /// Compiles an already-lifted program through the template cache,
    /// binding either its native angles (`angles = None`) or an explicit
    /// override.
    ///
    /// The template is keyed on the lifted *signed* axes, so circuits whose
    /// conjugated axes differ only by sign do not collide. The trailing
    /// Clifford is composed into the result via [`LiftedProgram::attach`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::compile`], plus
    /// [`EngineError::AngleCountMismatch`] for an override of the wrong
    /// length.
    pub fn compile_lifted(
        &self,
        lifted: &LiftedProgram,
        angles: Option<&[f64]>,
    ) -> Result<QuClearResult, EngineError> {
        self.compile_lifted_with_deadline(lifted, angles, Deadline::none())
    }

    /// [`Self::compile_lifted`] under a request [`Deadline`]; see
    /// [`Self::template_with_deadline`] for the budget semantics.
    ///
    /// # Errors
    ///
    /// As [`Self::compile_lifted`], plus
    /// [`EngineError::DeadlineExceeded`] once the budget is spent.
    pub fn compile_lifted_with_deadline(
        &self,
        lifted: &LiftedProgram,
        angles: Option<&[f64]>,
        deadline: Deadline,
    ) -> Result<QuClearResult, EngineError> {
        let template = self.template_with_deadline(lifted.axes(), deadline)?;
        deadline.check()?;
        let result = contain_panics(|| match angles {
            Some(angles) => template.bind(angles),
            None => template.bind(lifted.native_angles()),
        })?;
        self.binds.inc();
        Ok(lifted.attach(result))
    }

    /// CA-Pre for a program's observable set, served through the template
    /// cache: the observable set is conjugated through the extracted
    /// Clifford in one word-parallel frame sweep on first sight, and a
    /// template cache hit with a previously seen set returns the memoized
    /// rewriting without re-conjugating anything.
    ///
    /// # Errors
    ///
    /// Propagates template-compilation failures. A register-size mismatch
    /// between the program and the observables surfaces as
    /// [`EngineError::CompilationPanicked`] (the absorption panic is
    /// contained, like every other compilation panic).
    pub fn absorb_observables(
        &self,
        program: &[PauliRotation],
        observables: &[SignedPauli],
    ) -> Result<Arc<AbsorbedObservables>, EngineError> {
        self.absorb_observables_with_deadline(program, observables, Deadline::none())
    }

    /// [`Self::absorb_observables`] under a request [`Deadline`]; the check
    /// sits between the template lookup and the conjugation sweep.
    ///
    /// # Errors
    ///
    /// As [`Self::absorb_observables`], plus
    /// [`EngineError::DeadlineExceeded`] once the budget is spent.
    pub fn absorb_observables_with_deadline(
        &self,
        program: &[PauliRotation],
        observables: &[SignedPauli],
        deadline: Deadline,
    ) -> Result<Arc<AbsorbedObservables>, EngineError> {
        let template = self.template_for_with_deadline(program, deadline)?;
        deadline.check()?;
        contain_panics(|| Ok(template.absorb_observables(observables)))
    }

    /// The measurement-reduction plan for a program + observable set, served
    /// through the template cache: CA-Pre absorbs the set, the absorbed
    /// frame is partitioned into general-commuting groups, and each group
    /// gets a diagonalizing Clifford with a composed affine readout map. The
    /// plan is memoized on the template (shared across clones), and the
    /// grouping + diagonalization work records under the `diagonalize` stage
    /// histogram; the group count is exported on the
    /// `quclear_engine_measurement_groups` gauge.
    ///
    /// # Errors
    ///
    /// Propagates template-compilation failures; a register-size mismatch
    /// between program and observables surfaces as
    /// [`EngineError::CompilationPanicked`] (contained, like every other
    /// compilation panic).
    pub fn measurement_plan(
        &self,
        program: &[PauliRotation],
        observables: &[SignedPauli],
    ) -> Result<Arc<MeasurementPlan>, EngineError> {
        self.measurement_plan_with_deadline(program, observables, Deadline::none())
    }

    /// [`Self::measurement_plan`] under a request [`Deadline`]; the check
    /// sits between the template lookup and the diagonalization sweep.
    ///
    /// # Errors
    ///
    /// As [`Self::measurement_plan`], plus
    /// [`EngineError::DeadlineExceeded`] once the budget is spent.
    pub fn measurement_plan_with_deadline(
        &self,
        program: &[PauliRotation],
        observables: &[SignedPauli],
        deadline: Deadline,
    ) -> Result<Arc<MeasurementPlan>, EngineError> {
        let template = self.template_for_with_deadline(program, deadline)?;
        deadline.check()?;
        let plan = contain_panics(|| Ok(template.measurement_plan(observables)))?;
        self.measurement_groups.set(plan.num_groups() as i64);
        Ok(plan)
    }

    /// Estimates every observable of a program by sampled simultaneous
    /// measurement: bind the program, simulate the *optimized* circuit once
    /// (the extracted Clifford is absorbed into the observables — the CA
    /// identity), then for each commuting group of the
    /// [`Self::measurement_plan`] append the group's diagonalizing Clifford,
    /// draw one seeded `shots`-sized batch, and read *all* group members
    /// from that single batch through the composed affine map. The total
    /// sample cost is `groups` batches instead of `observables` batches —
    /// the reported [`EstimateResult::shot_budget_divisor`].
    ///
    /// Deterministic: the same `(program, observables, shots, seed)` always
    /// produces the same batches (group `g` samples with
    /// [`group_shot_seed`]`(seed, g)`) and hence the same estimates.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::NotEstimable`] when `shots == 0` or the
    /// register exceeds the dense simulator's 26-qubit budget; otherwise as
    /// [`Self::measurement_plan`].
    pub fn estimate_observables(
        &self,
        program: &[PauliRotation],
        observables: &[SignedPauli],
        shots: u64,
        seed: u64,
    ) -> Result<EstimateResult, EngineError> {
        self.estimate_observables_with_deadline(program, observables, shots, seed, Deadline::none())
    }

    /// [`Self::estimate_observables`] under a request [`Deadline`]; the
    /// budget is checked between the template lookup, the plan build, the
    /// bind, and every per-group simulation.
    ///
    /// # Errors
    ///
    /// As [`Self::estimate_observables`], plus
    /// [`EngineError::DeadlineExceeded`] once the budget is spent.
    pub fn estimate_observables_with_deadline(
        &self,
        program: &[PauliRotation],
        observables: &[SignedPauli],
        shots: u64,
        seed: u64,
        deadline: Deadline,
    ) -> Result<EstimateResult, EngineError> {
        if shots == 0 {
            return Err(EngineError::NotEstimable {
                reason: "shot count must be positive".to_string(),
            });
        }
        let plan = self.measurement_plan_with_deadline(program, observables, deadline)?;
        if plan.num_qubits() > MAX_ESTIMABLE_QUBITS {
            return Err(EngineError::NotEstimable {
                reason: format!(
                    "register of {} qubits exceeds the dense simulator budget of {MAX_ESTIMABLE_QUBITS}",
                    plan.num_qubits()
                ),
            });
        }
        let groups: Vec<Vec<usize>> = plan.groups().iter().map(|g| g.members().to_vec()).collect();
        if plan.num_groups() == 0 {
            return Ok(EstimateResult {
                expectations: Vec::new(),
                groups,
                shot_budget_divisor: plan.shot_budget_divisor(),
            });
        }
        deadline.check()?;
        let template = self.template_for_with_deadline(program, deadline)?;
        let bound = contain_panics(|| template.bind_program(program))?;
        let base = contain_panics(|| Ok(StateVector::from_circuit(&bound.optimized)))?;
        let mut batches = Vec::with_capacity(plan.num_groups());
        for (g, group) in plan.groups().iter().enumerate() {
            deadline.check()?;
            let batch = contain_panics(|| {
                let mut rotated = base.clone();
                rotated.apply_circuit(group.diagonalizer().circuit());
                let mut rng = StdRng::seed_from_u64(group_shot_seed(seed, g));
                let indices = rotated.sample_indices(shots as usize, &mut rng);
                Ok(ShotBatch::from_indices(plan.num_qubits(), &indices))
            })?;
            batches.push(batch);
        }
        let expectations = plan.estimate(&batches);
        Ok(EstimateResult {
            expectations,
            groups,
            shot_budget_divisor: plan.shot_budget_divisor(),
        })
    }

    /// CA-Post for measured shots, served through the template cache: the
    /// extracted Clifford is reduced once per template to a classical affine
    /// map over GF(2) (memoized on the template, like the CA-Pre results),
    /// and every call rewrites the shot batch word-parallel — no quantum
    /// re-simulation, no tableau algebra.
    ///
    /// # Errors
    ///
    /// Propagates template-compilation failures, and returns
    /// [`EngineError::NotAbsorbable`] when the program's extracted Clifford
    /// is not a basis layer + CNOT network (the QAOA form of Proposition 1);
    /// such programs should use [`Self::absorb_observables`] instead.
    pub fn post_process_shots(
        &self,
        program: &[PauliRotation],
        shots: &ShotBatch,
    ) -> Result<ShotBatch, EngineError> {
        let template = self.template_for(program)?;
        let absorber = template
            .probability_absorber()
            .map_err(EngineError::NotAbsorbable)?;
        let start = Instant::now();
        let processed = contain_panics(|| Ok(absorber.post_process_shots(shots)))?;
        self.stage_absorb_post.record_duration(start.elapsed());
        Ok(processed)
    }

    /// The engine's metric registry: per-stage latency histograms
    /// ([`ENGINE_STAGE_METRIC`], [`ENGINE_SINGLEFLIGHT_METRIC`]) plus the
    /// cache counters behind [`Engine::stats`]. Other subsystems (the
    /// `quclear-serve` front-end) register their own metrics here so one
    /// snapshot covers the whole process.
    #[must_use]
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// A coherent snapshot of every metric in [`Engine::metrics`], with the
    /// cache-occupancy gauge refreshed first (it is a derived quantity the
    /// hot path does not maintain exactly — see [`EngineStats::entries`]).
    #[must_use]
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.cache_entries
            .set(self.cache.len().min(self.cache.capacity()) as i64);
        self.metrics.snapshot()
    }

    /// A point-in-time snapshot of the counters.
    ///
    /// Safe to call concurrently with requests; see the staleness contract
    /// on [`EngineStats`]. Each counter is read exactly once (so successive
    /// snapshots are monotone per field), `entries` is clamped to the
    /// configured capacity (the live length can transiently overshoot by an
    /// in-progress insert that has reserved its slot but not evicted yet),
    /// and the read order pins the cross-field invariants:
    /// `coalesced_waits` is read *first* (Acquire, pairing with the Release
    /// increment that every coalesced request performs after its hit/miss),
    /// so `coalesced_waits <= hits + misses` in every snapshot, and the
    /// `hits`/`misses` pair can only make the reported hit rate
    /// conservative, never push [`EngineStats::hit_rate`] out of `[0, 1]`.
    ///
    /// The counters read here are the *same atomic cells* the telemetry
    /// registry snapshots ([`Engine::metrics_snapshot`]) — registering a
    /// counter twice returns one shared cell — so there is one source of
    /// truth and the two views cannot drift. `stats()` keeps its own read
    /// path (instead of going through the registry snapshot) for exactly one
    /// reason: the `coalesced_waits`-first Acquire read order above, which a
    /// name-ordered registry sweep would not preserve.
    pub fn stats(&self) -> EngineStats {
        // ordering: Acquire, and read *first* — pairs with the Release
        // increment above so `coalesced_waits <= hits + misses` holds in
        // every snapshot (model-checked in tests/sched_models.rs).
        let coalesced_waits = self.coalesced_waits.get_ordered(Ordering::Acquire);
        let hits = self.hits.get();
        let misses = self.misses.get();
        EngineStats {
            hits,
            misses,
            coalesced_waits,
            evictions: self.evictions.get(),
            binds: self.binds.get(),
            entries: self.cache.len().min(self.cache.capacity()),
            capacity: self.cache.capacity(),
            lane_words: quclear_pauli::kernel_lane_words(),
            sweep_threads: rayon::current_num_threads(),
        }
    }

    /// Number of cache shards in use.
    #[must_use]
    pub fn num_cache_shards(&self) -> usize {
        self.cache.num_shards()
    }

    /// Drops every cached template (counters are kept).
    pub fn clear_cache(&self) {
        self.cache.clear();
        self.cache_entries.set(0);
    }
}

/// Runs `f`, converting a panic into [`EngineError::CompilationPanicked`].
fn contain_panics<T>(f: impl FnOnce() -> Result<T, EngineError>) -> Result<T, EngineError> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(result) => result,
        Err(payload) => {
            let message = payload
                .downcast_ref::<&str>()
                .map(ToString::to_string)
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(EngineError::CompilationPanicked { message })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn rot(s: &str, angle: f64) -> PauliRotation {
        PauliRotation::parse(s, angle).unwrap()
    }

    fn program_a() -> Vec<PauliRotation> {
        vec![rot("ZZZZ", 0.3), rot("YYXX", 0.7)]
    }

    #[test]
    fn cache_hits_on_structural_match() {
        let engine = Engine::new(8);
        engine.compile(&program_a()).unwrap();
        // Same axes, new angles: must hit.
        engine
            .compile(&[rot("ZZZZ", -1.2), rot("YYXX", 0.001)])
            .unwrap();
        let stats = engine.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.binds, 2);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_is_counted() {
        // One shard: exact global LRU, deterministic regardless of how the
        // fingerprints hash.
        let engine = Engine::with_shards(2, 1, QuClearConfig::default());
        let programs = [
            vec![rot("XX", 0.1)],
            vec![rot("YY", 0.1)],
            vec![rot("ZZ", 0.1)],
        ];
        for p in &programs {
            engine.compile(p).unwrap();
        }
        let stats = engine.stats();
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
        // The evicted (oldest) structure misses again.
        engine.compile(&programs[0]).unwrap();
        assert_eq!(engine.stats().misses, 4);
    }

    #[test]
    fn batch_preserves_order_and_isolates_errors() {
        let engine = Engine::new(8);
        let jobs = vec![
            BatchJob::new(vec![rot("ZZ", 0.4)]),
            // Bad job: inconsistent register sizes.
            BatchJob::new(vec![rot("X", 0.1), rot("XX", 0.2)]),
            BatchJob::with_angles(vec![rot("ZZ", 0.0)], vec![1.25]),
            // Bad job: wrong angle count.
            BatchJob::with_angles(vec![rot("YY", 0.1)], vec![0.1, 0.2]),
        ];
        let results = engine.compile_batch(&jobs);
        assert_eq!(results.len(), 4);
        assert!(results[0].is_ok());
        assert!(matches!(
            results[1],
            Err(EngineError::InconsistentQubitCounts { .. })
        ));
        assert!(results[2].is_ok());
        assert!(matches!(
            results[3],
            Err(EngineError::AngleCountMismatch {
                expected: 1,
                found: 2
            })
        ));
        // Jobs 0 and 2 share the ZZ structure: one miss, one hit.
        let stats = engine.stats();
        assert_eq!(stats.entries, 2);
    }

    #[test]
    fn sweep_reuses_one_template() {
        let engine = Engine::new(8);
        let program = program_a();
        let angle_sets: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![0.1 * f64::from(i), -0.05 * f64::from(i)])
            .collect();
        let results = engine.sweep(&program, &angle_sets).unwrap();
        assert_eq!(results.len(), 20);
        assert!(results.iter().all(Result::is_ok));
        let stats = engine.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.binds, 20);
    }

    #[test]
    fn engine_is_shareable_across_threads() {
        let engine = Arc::new(Engine::new(8));
        let program = program_a();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let engine = Arc::clone(&engine);
                let program = program.clone();
                scope.spawn(move || {
                    for i in 0..10 {
                        engine
                            .compile(&[rot("ZZZZ", 0.01 * f64::from(i)), rot("YYXX", 0.5)])
                            .unwrap();
                    }
                    drop(program);
                });
            }
        });
        let stats = engine.stats();
        assert_eq!(stats.hits + stats.misses, 40);
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.binds, 40);
    }

    #[test]
    fn clear_cache_keeps_counters() {
        let engine = Engine::new(8);
        engine.compile(&program_a()).unwrap();
        engine.clear_cache();
        let stats = engine.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.misses, 1);
        engine.compile(&program_a()).unwrap();
        assert_eq!(engine.stats().misses, 2);
    }

    #[test]
    fn qasm_programs_share_templates_across_angle_changes() {
        let engine = Engine::new(8);
        let ansatz = |theta: f64| {
            format!("qreg q[3];\ncx q[0], q[1];\ncx q[1], q[2];\nrz({theta}) q[2];\ncx q[1], q[2];\ncx q[0], q[1];\n")
        };
        let first = engine.compile_qasm(&ansatz(0.25)).unwrap();
        let second = engine.compile_qasm(&ansatz(-1.75)).unwrap();
        assert_eq!(first.optimized.len(), second.optimized.len());
        let stats = engine.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));

        // bind_qasm overrides the textual angle through the same template.
        let bound = engine.bind_qasm(&ansatz(0.0), &[2.5]).unwrap();
        assert_eq!(engine.stats().hits, 2);
        assert_eq!(bound.optimized.len(), first.optimized.len());
    }

    #[test]
    fn bind_qasm_validates_the_angle_count() {
        let engine = Engine::new(8);
        let qasm = "qreg q[2];\nrz(0.5) q[0];\nrx(0.25) q[1];\n";
        assert!(matches!(
            engine.bind_qasm(qasm, &[0.1]).unwrap_err(),
            EngineError::AngleCountMismatch {
                expected: 2,
                found: 1
            }
        ));
    }

    #[test]
    fn qasm_parse_errors_surface_with_their_location() {
        let engine = Engine::new(8);
        let err = engine.compile_qasm("qreg q[1];\nccx q[0];\n").unwrap_err();
        let EngineError::QasmParse(inner) = err else {
            panic!("expected a parse error");
        };
        assert_eq!(inner.line, 2);
    }

    #[test]
    fn expired_deadline_fails_a_cold_compile_fast() {
        let engine = Engine::new(8);
        let err = engine
            .compile_with_deadline(&program_a(), Deadline::within(std::time::Duration::ZERO))
            .unwrap_err();
        assert_eq!(err, EngineError::DeadlineExceeded);
        // The budget check fired before extraction: nothing was cached.
        assert_eq!(engine.stats().entries, 0);
    }

    #[test]
    fn expired_deadline_still_serves_cache_hits() {
        let engine = Engine::new(8);
        engine.compile(&program_a()).unwrap();
        // A hit costs microseconds; serving it beats composing the error.
        let template = engine
            .template_for_with_deadline(&program_a(), Deadline::within(std::time::Duration::ZERO))
            .unwrap();
        assert!(template.num_params() > 0);
        assert_eq!(engine.stats().hits, 1);
    }

    #[test]
    fn batch_deadline_errors_are_isolated_per_job() {
        let engine = Engine::new(8);
        let jobs = vec![
            BatchJob::new(vec![rot("ZZ", 0.4)]),
            BatchJob::new(vec![rot("XX", 0.1)]),
        ];
        let results =
            engine.compile_batch_with_deadline(&jobs, Deadline::within(std::time::Duration::ZERO));
        assert_eq!(results.len(), 2);
        for result in results {
            assert_eq!(result.unwrap_err(), EngineError::DeadlineExceeded);
        }
        // A generous budget compiles the same batch normally.
        let results = engine.compile_batch_with_deadline(
            &jobs,
            Deadline::within(std::time::Duration::from_secs(60)),
        );
        assert!(results.iter().all(Result::is_ok));
    }

    #[test]
    fn qasm_deadlines_cover_the_lifted_pipeline() {
        let engine = Engine::new(8);
        let qasm = "qreg q[2];\ncx q[0], q[1];\nrz(0.5) q[1];\ncx q[0], q[1];\n";
        let err = engine
            .compile_qasm_with_deadline(qasm, Deadline::within(std::time::Duration::ZERO))
            .unwrap_err();
        assert_eq!(err, EngineError::DeadlineExceeded);
        engine
            .compile_qasm_with_deadline(qasm, Deadline::within(std::time::Duration::from_secs(60)))
            .unwrap();
        engine
            .bind_qasm_with_deadline(
                qasm,
                &[1.5],
                Deadline::within(std::time::Duration::from_secs(60)),
            )
            .unwrap();
    }

    #[test]
    fn contained_panics_become_errors() {
        let err = contain_panics::<()>(|| panic!("boom")).unwrap_err();
        assert_eq!(
            err,
            EngineError::CompilationPanicked {
                message: "boom".to_string()
            }
        );
    }

    #[test]
    fn hit_rate_handles_zero_lookups_and_saturation() {
        // Zero lookups: defined as 0.0, not NaN.
        assert_eq!(EngineStats::default().hit_rate(), 0.0);
        // Saturating totals stay in [0, 1] even at the u64 extremes.
        let extreme = EngineStats {
            hits: u64::MAX,
            misses: u64::MAX,
            ..EngineStats::default()
        };
        let rate = extreme.hit_rate();
        assert!((0.0..=1.0).contains(&rate), "rate {rate} out of range");
        assert_eq!(extreme.lookups(), u64::MAX);
        // All hits: exactly 1.
        let all_hits = EngineStats {
            hits: 7,
            ..EngineStats::default()
        };
        assert_eq!(all_hits.hit_rate(), 1.0);
    }

    #[test]
    fn stats_and_metrics_snapshot_read_the_same_cells() {
        let engine = Engine::new(8);
        engine.compile(&program_a()).unwrap();
        engine.compile(&program_a()).unwrap();
        let stats = engine.stats();
        let snapshot = engine.metrics_snapshot();
        assert_eq!(
            snapshot.counter_value("quclear_engine_cache_hits_total", None),
            Some(stats.hits)
        );
        assert_eq!(
            snapshot.counter_value("quclear_engine_cache_misses_total", None),
            Some(stats.misses)
        );
        assert_eq!(
            snapshot.counter_value("quclear_engine_binds_total", None),
            Some(stats.binds)
        );
        assert_eq!(
            snapshot.counter_value("quclear_engine_coalesced_waits_total", None),
            Some(stats.coalesced_waits)
        );
        assert_eq!(
            snapshot.gauge_value("quclear_engine_cache_entries", None),
            Some(stats.entries as i64)
        );
        assert_eq!(
            snapshot.gauge_value("quclear_engine_cache_capacity", None),
            Some(stats.capacity as i64)
        );
    }

    #[test]
    fn pipeline_stages_record_into_the_registry() {
        let engine = Engine::new(8);
        engine.compile(&program_a()).unwrap();
        engine.compile(&program_a()).unwrap();
        let observables: Vec<SignedPauli> = vec!["+ZIII".parse().unwrap()];
        engine
            .absorb_observables(&program_a(), &observables)
            .unwrap();
        let snapshot = engine.metrics_snapshot();
        let stage = |name: &str| {
            snapshot
                .histogram(ENGINE_STAGE_METRIC, Some(("stage", name)))
                .unwrap_or_else(|| panic!("stage `{name}` not registered"))
        };
        // Two compiles: two fingerprint timings (plus one from absorb's
        // template lookup), one extract, two binds.
        assert!(stage("fingerprint").count() >= 2);
        assert_eq!(stage("extract").count(), 1);
        assert_eq!(stage("bind").count(), 2);
        assert_eq!(stage("absorb_pre").count(), 1);
        // Uncontended compiles lead their own flights.
        let leader = snapshot
            .histogram(ENGINE_SINGLEFLIGHT_METRIC, Some(("role", "leader")))
            .unwrap();
        assert_eq!(leader.count(), 1);
    }

    #[test]
    fn post_process_shots_roundtrips_qaoa_form_programs() {
        let engine = Engine::new(8);
        // ZZ-rotation programs are the QAOA form Proposition 1 covers.
        let program = vec![rot("ZZ", 0.4), rot("IZ", 0.9)];
        engine.compile(&program).unwrap();
        let shots = ShotBatch::from_indices(2, &[0b00, 0b01, 0b10, 0b11, 0b01]);
        let processed = engine.post_process_shots(&program, &shots).unwrap();
        assert_eq!(processed.num_shots(), 5);
        // Template-side absorber construction happened once; the stage
        // histogram saw the call.
        let snapshot = engine.metrics_snapshot();
        let absorb_post = snapshot
            .histogram(ENGINE_STAGE_METRIC, Some(("stage", "absorb_post")))
            .unwrap();
        assert_eq!(absorb_post.count(), 1);
    }

    #[test]
    fn post_process_shots_rejects_non_absorbable_programs() {
        let engine = Engine::new(8);
        // An X-axis rotation extracts a Clifford with a Hadamard-like basis
        // change sandwich that is not a pure basis layer + CNOT network for
        // CA-Post... unless it is: probe and accept either a clean answer or
        // the typed rejection, but never a panic or a wrong-variant error.
        let program = vec![rot("XY", 0.3), rot("YX", 0.8)];
        let shots = ShotBatch::from_indices(2, &[0, 1, 2, 3]);
        match engine.post_process_shots(&program, &shots) {
            Ok(processed) => assert_eq!(processed.num_shots(), 4),
            Err(EngineError::NotAbsorbable(_)) => {}
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }
}

//! Compiled templates: run Clifford Extraction once, rebind angles cheaply.
//!
//! # Why this is sound
//!
//! Every decision Clifford Extraction makes — commuting-block partitioning,
//! `find_next_pauli` reordering, CNOT-tree shapes, which Clifford gates are
//! deferred — depends only on the Pauli *axes* of the program, never on the
//! rotation angles. Angles enter the output in exactly one place: each
//! non-trivial rotation contributes a single `Rz` whose angle is
//! `±θ` (the sign coming from Heisenberg conjugation through the extracted
//! Clifford, itself angle-independent).
//!
//! A [`CompiledTemplate`] therefore compiles the program once with
//! *marker angles* (the i-th rotation gets angle `i + 1`), reads back which
//! `Rz` belongs to which input rotation and with which sign, and stores the
//! pre-peephole skeleton. [`CompiledTemplate::bind`] patches the recorded
//! `Rz` slots with real angles in `O(gates)` and re-runs only the cheap
//! local peephole pass — producing, for programs whose angles are all
//! non-zero, **gate-for-gate the same circuit** as a from-scratch
//! [`quclear_core::compile`] (a property-tested invariant).
//!
//! The one caveat is exact zeros: a from-scratch compile *skips* zero-angle
//! rotations entirely (changing downstream extraction), while a template
//! keeps the rotation's structure and lets the peephole drop the `Rz(0)`.
//! Both circuits implement the same unitary; they just need not be
//! gate-identical.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

use quclear_circuit::{
    is_zero_rotation, optimize_warming, optimize_with_shared_cache, Circuit, Gate, PeepholeCache,
};
use quclear_core::{
    extract_clifford, AbsorbedObservables, AbsorptionError, AbsorptionPlan, MeasurementPlan,
    ProbabilityAbsorber, QuClearConfig, QuClearResult,
};
use quclear_pauli::{PauliRotation, SignedPauli};
use quclear_tableau::CliffordTableau;
use quclear_telemetry::Histogram;

use crate::error::EngineError;
use crate::fingerprint::ProgramFingerprint;

/// Histogram handles for the template-side pipeline stages, attached by the
/// owning [`crate::Engine`] after compilation. Templates compiled directly
/// (without an engine) carry no handles and record nothing.
#[derive(Clone, Debug)]
pub(crate) struct StageMetrics {
    /// Whole `bind` latency (validate + patch + peephole).
    pub(crate) bind: Arc<Histogram>,
    /// The peephole sub-stage of a bind (only recorded when a pass runs).
    pub(crate) peephole: Arc<Histogram>,
    /// CA-Pre conjugation work (memo misses only — hits do no stage work).
    pub(crate) absorb_pre: Arc<Histogram>,
    /// Measurement-plan synthesis: grouping plus per-group diagonalizing
    /// Clifford sweeps (memo misses only).
    pub(crate) diagonalize: Arc<Histogram>,
}

/// One parameterized `Rz` in the *optimized* marker skeleton: the peephole
/// may have folded Z-axis Clifford gates into the slot, contributing a
/// constant offset on the `π/2` grid.
#[derive(Clone, Copy, Debug)]
struct OptimizedSlot {
    /// Index of the `Rz` gate within the optimized skeleton.
    gate: usize,
    /// Index of the parameter the slot binds.
    param: usize,
    /// Sign acquired by Heisenberg conjugation (and the axis sign).
    sign: f64,
    /// Constant angle folded in by the peephole (a multiple of `π/2`).
    offset: f64,
}

/// One parameterized `Rz` in the template skeleton.
#[derive(Clone, Copy, Debug)]
struct RzSlot {
    /// Index of the `Rz` gate within the skeleton circuit.
    gate: usize,
    /// Index of the parameter (input rotation) the slot binds.
    param: usize,
    /// Sign acquired by Heisenberg conjugation (and the axis sign).
    sign: f64,
}

/// A rotation program compiled once, ready to be re-bound to new angles.
///
/// Produced by [`CompiledTemplate::compile`] (or through the caching
/// [`crate::Engine`]). Templates are immutable and [`Send`]`+`[`Sync`]; a
/// single template can serve concurrent `bind` calls from many threads.
///
/// # Examples
///
/// ```
/// use quclear_core::QuClearConfig;
/// use quclear_engine::CompiledTemplate;
/// use quclear_pauli::PauliRotation;
///
/// let program = vec![
///     PauliRotation::parse("ZZZZ", 0.3)?,
///     PauliRotation::parse("YYXX", 0.7)?,
/// ];
/// let template = CompiledTemplate::compile_program(&program, &QuClearConfig::default())?;
/// // Rebind the same structure to new angles without re-extracting:
/// let result = template.bind(&[1.1, -0.4])?;
/// assert!(result.cnot_count() <= 4);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct CompiledTemplate {
    fingerprint: ProgramFingerprint,
    config: QuClearConfig,
    num_qubits: usize,
    num_params: usize,
    /// Extraction output with marker angles still in place.
    skeleton: Circuit,
    slots: Vec<RzSlot>,
    extracted: Circuit,
    heisenberg: CliffordTableau,
    /// Fusion decisions recorded while peepholing the marker skeleton. The
    /// Clifford (angle-free) runs — the vast majority — repeat exactly on
    /// every bind, so `bind` replays them instead of redoing the Euler
    /// decompositions.
    peephole_cache: PeepholeCache,
    /// The marker skeleton *after* the full peephole, with its surviving
    /// `Rz` slots decoded, when every parameter could be located in it.
    /// Since every structural peephole decision is angle-independent
    /// (rotations never enter fusion runs), a bind with generic angles
    /// reaches the same structure — so `bind` patches this circuit and the
    /// pipeline merely confirms the fixpoint in one cheap verify round,
    /// instead of re-deriving every rewrite from the raw skeleton.
    optimized_skeleton: Option<(Circuit, Vec<OptimizedSlot>)>,
    /// Batch absorption recipe (angle-independent, like the extracted
    /// Clifford it derives from): built once at compile time so every warm
    /// bind gets CA-Pre/CA-Post for free.
    absorption: AbsorptionPlan,
    /// Memoized CA-Pre results per observable set. Shared across template
    /// clones (the cache hands out `Arc<CompiledTemplate>` clones), so a
    /// template cache hit never re-conjugates an observable set it has
    /// already rewritten.
    absorbed_memo: Arc<RwLock<HashMap<u64, AbsorbedEntry>>>,
    /// Memoized measurement-reduction plans (commuting groups + per-group
    /// diagonalizers + composed readout maps) per observable set, shared
    /// across clones like the CA-Pre memo.
    measurement_memo: Arc<RwLock<HashMap<u64, MeasurementEntry>>>,
    /// Memoized CA-Post shot absorber (or the reason the extracted Clifford
    /// does not reduce to one), built on first use and shared across clones.
    probability_absorber: Arc<OnceLock<Result<Arc<ProbabilityAbsorber>, AbsorptionError>>>,
    /// Stage histograms attached by the owning engine; `None` for
    /// standalone templates.
    stage_metrics: Option<StageMetrics>,
}

/// One memoized CA-Pre result. The key is a 64-bit hash of the observable
/// set; the stored set disambiguates collisions exactly.
#[derive(Clone, Debug)]
struct AbsorbedEntry {
    observables: Vec<SignedPauli>,
    absorbed: Arc<AbsorbedObservables>,
}

/// One memoized measurement-reduction plan, keyed and disambiguated like
/// [`AbsorbedEntry`].
#[derive(Clone, Debug)]
struct MeasurementEntry {
    observables: Vec<SignedPauli>,
    plan: Arc<MeasurementPlan>,
}

/// Soft cap on memoized observable sets per template: workloads measure a
/// handful of Hamiltonians per ansatz, so this is generous, and it bounds
/// memory if a caller streams unique sets through one template.
const ABSORBED_MEMO_CAPACITY: usize = 16;

/// Same bound for memoized measurement plans (one per observable set).
const MEASUREMENT_MEMO_CAPACITY: usize = 16;

/// Order-sensitive 64-bit hash of an observable set (axes + signs + size).
fn observable_set_key(observables: &[SignedPauli]) -> u64 {
    let mut hasher = DefaultHasher::new();
    observables.len().hash(&mut hasher);
    for observable in observables {
        observable.is_negative().hash(&mut hasher);
        observable.pauli().num_qubits().hash(&mut hasher);
        observable.pauli().x_bits().words().hash(&mut hasher);
        observable.pauli().z_bits().words().hash(&mut hasher);
    }
    hasher.finish()
}

impl CompiledTemplate {
    /// Compiles a template from signed Pauli axes.
    ///
    /// Each axis `±P` stands for the parameterized rotation
    /// `exp(-i·θ/2·(±P))`; a negative sign folds into the bound angle.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InconsistentQubitCounts`] if the axes act on
    /// different register sizes.
    pub fn compile(axes: &[SignedPauli], config: &QuClearConfig) -> Result<Self, EngineError> {
        let num_qubits = axes.first().map_or(0, SignedPauli::num_qubits);
        for (index, axis) in axes.iter().enumerate() {
            if axis.num_qubits() != num_qubits {
                return Err(EngineError::InconsistentQubitCounts {
                    expected: num_qubits,
                    found: axis.num_qubits(),
                    index,
                });
            }
        }

        // Marker angles: parameter i compiles as angle i+1, which survives
        // extraction as ±(i+1) on exactly one Rz. Angles are exact in f64
        // far beyond any realistic program length.
        let marked: Vec<PauliRotation> = axes
            .iter()
            .enumerate()
            .map(|(i, axis)| PauliRotation::with_signed_pauli(axis.clone(), (i + 1) as f64))
            .collect();

        let extraction = extract_clifford(&marked, &config.extraction);
        let skeleton = extraction.optimized;

        let mut slots = Vec::new();
        for (gate_idx, gate) in skeleton.gates().iter().enumerate() {
            if let Gate::Rz { angle, .. } = gate {
                let magnitude = angle.abs();
                let param = magnitude.round() as usize - 1;
                debug_assert!(
                    (magnitude - magnitude.round()).abs() < 1e-9 && param < axes.len(),
                    "marker angle {angle} does not decode to a parameter index"
                );
                slots.push(RzSlot {
                    gate: gate_idx,
                    param,
                    sign: angle.signum(),
                });
            }
        }

        // Warm the peephole memo on the marker skeleton so that warm binds
        // skip the expensive fusion math for every angle-free run, and keep
        // the optimized marker circuit: if every slot survives in it
        // decodably, binds start from this near-fixpoint instead of the raw
        // skeleton.
        let mut peephole_cache = PeepholeCache::new();
        let optimized_skeleton = if config.apply_peephole {
            let optimized = optimize_warming(&skeleton, &config.peephole, &mut peephole_cache);
            decode_optimized_slots(&optimized, axes.len(), &slots)
                .map(|decoded| (optimized, decoded))
        } else {
            None
        };

        let absorption =
            AbsorptionPlan::from_extraction(extraction.heisenberg.clone(), &extraction.extracted);
        Ok(CompiledTemplate {
            fingerprint: ProgramFingerprint::of_axes(axes, config),
            config: *config,
            num_qubits,
            num_params: axes.len(),
            skeleton,
            slots,
            extracted: extraction.extracted,
            heisenberg: extraction.heisenberg,
            peephole_cache,
            optimized_skeleton,
            absorption,
            absorbed_memo: Arc::new(RwLock::new(HashMap::new())),
            measurement_memo: Arc::new(RwLock::new(HashMap::new())),
            probability_absorber: Arc::new(OnceLock::new()),
            stage_metrics: None,
        })
    }

    /// Attaches the engine's stage histograms (recorded on every bind /
    /// absorb through this template and its clones).
    pub(crate) fn set_stage_metrics(&mut self, metrics: StageMetrics) {
        self.stage_metrics = Some(metrics);
    }

    /// Compiles a template from a rotation program, ignoring its angles
    /// (the axes are taken as positive).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InconsistentQubitCounts`] if the rotations act
    /// on different register sizes.
    pub fn compile_program(
        program: &[PauliRotation],
        config: &QuClearConfig,
    ) -> Result<Self, EngineError> {
        let axes: Vec<SignedPauli> = program
            .iter()
            .map(|r| SignedPauli::positive(r.pauli().clone()))
            .collect();
        Self::compile(&axes, config)
    }

    /// Rebinds the template to concrete rotation angles.
    ///
    /// Runs in `O(gates)` plus one local peephole pass (when the config
    /// enables it) — no extraction, tree synthesis or tableau algebra. For
    /// programs with no exactly-zero angle the result is gate-for-gate
    /// identical to [`quclear_core::compile`] on the same program.
    ///
    /// # Errors
    ///
    /// * [`EngineError::AngleCountMismatch`] — `angles.len()` differs from
    ///   [`Self::num_params`].
    /// * [`EngineError::NonFiniteAngle`] — an angle is NaN or infinite.
    pub fn bind(&self, angles: &[f64]) -> Result<QuClearResult, EngineError> {
        Ok(QuClearResult {
            optimized: self.patch_and_peephole(angles)?,
            extracted: self.extracted.clone(),
            heisenberg: self.heisenberg.clone(),
        })
    }

    /// Shared implementation of the bind variants: validate, patch the `Rz`
    /// slots, and run the (memo-backed) peephole. Records the whole call
    /// into the engine's `bind` stage histogram when handles are attached.
    fn patch_and_peephole(&self, angles: &[f64]) -> Result<Circuit, EngineError> {
        let start = Instant::now();
        let result = self.patch_and_peephole_impl(angles);
        if let Some(metrics) = &self.stage_metrics {
            metrics.bind.record_duration(start.elapsed());
        }
        result
    }

    fn patch_and_peephole_impl(&self, angles: &[f64]) -> Result<Circuit, EngineError> {
        if angles.len() != self.num_params {
            return Err(EngineError::AngleCountMismatch {
                expected: self.num_params,
                found: angles.len(),
            });
        }
        if let Some(index) = angles.iter().position(|a| !a.is_finite()) {
            return Err(EngineError::NonFiniteAngle { index });
        }

        // Fast path: patch the already-optimized marker skeleton. All
        // structural peephole decisions are angle-independent, so for
        // generic angles this circuit is already the pipeline's fixpoint;
        // the shared-cache run below is one verify round (and it still
        // catches the extra rewrites that special values — exact zeros —
        // enable).
        if let Some((optimized, slots)) = &self.optimized_skeleton {
            let mut gates = optimized.gates().to_vec();
            let mut any_zero = false;
            for slot in slots {
                let Gate::Rz { qubit, .. } = gates[slot.gate] else {
                    unreachable!("optimized slot {slot:?} does not point at an Rz gate");
                };
                let angle = slot.sign * angles[slot.param] + slot.offset;
                any_zero |= is_zero_rotation(angle, self.config.peephole.angle_tolerance);
                gates[slot.gate] = Gate::Rz { qubit, angle };
            }
            let patched = Circuit::from_gates(self.num_qubits, gates);
            // Every value-sensitive rewrite needs either a zero-angle
            // rotation or a mergeable/cancellable rotation pair, and the
            // compile-time peephole already eliminated every such pair
            // angle-independently. So unless a patched slot landed on zero,
            // the optimized skeleton is the pipeline's fixpoint verbatim.
            if !any_zero {
                return Ok(patched);
            }
            return Ok(self.run_peephole(&patched));
        }

        let mut gates = self.skeleton.gates().to_vec();
        for slot in &self.slots {
            let Gate::Rz { qubit, .. } = gates[slot.gate] else {
                unreachable!("slot {slot:?} does not point at an Rz gate");
            };
            gates[slot.gate] = Gate::Rz {
                qubit,
                angle: slot.sign * angles[slot.param],
            };
        }
        let patched = Circuit::from_gates(self.num_qubits, gates);
        if self.config.apply_peephole {
            Ok(self.run_peephole(&patched))
        } else {
            Ok(patched)
        }
    }

    /// The memo-backed peephole pass, timed into the `peephole` stage
    /// histogram when handles are attached.
    fn run_peephole(&self, patched: &Circuit) -> Circuit {
        let start = Instant::now();
        let optimized =
            optimize_with_shared_cache(patched, &self.config.peephole, &self.peephole_cache);
        if let Some(metrics) = &self.stage_metrics {
            metrics.peephole.record_duration(start.elapsed());
        }
        optimized
    }

    /// Rebinds to concrete angles, returning only the optimized circuit.
    ///
    /// [`Self::bind`] clones the (angle-independent) extracted Clifford and
    /// Heisenberg tableau into every [`QuClearResult`]; in tight sweep loops
    /// that only inspect the optimized circuit, this variant skips those
    /// copies — the shared parts stay accessible through
    /// [`Self::extracted`] and the template itself.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::bind`].
    pub fn bind_optimized(&self, angles: &[f64]) -> Result<Circuit, EngineError> {
        self.patch_and_peephole(angles)
    }

    /// Rebinds using the angles carried by a rotation program.
    ///
    /// The axes of `program` are **not** re-checked against the template;
    /// callers pairing arbitrary programs with cached templates go through
    /// [`crate::Engine`], which keys on the fingerprint.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::bind`].
    pub fn bind_program(&self, program: &[PauliRotation]) -> Result<QuClearResult, EngineError> {
        let angles: Vec<f64> = program.iter().map(PauliRotation::angle).collect();
        self.bind(&angles)
    }

    /// The structural fingerprint the template was compiled from.
    #[must_use]
    pub fn fingerprint(&self) -> ProgramFingerprint {
        self.fingerprint
    }

    /// The pipeline configuration the template was compiled with.
    #[must_use]
    pub fn config(&self) -> &QuClearConfig {
        &self.config
    }

    /// Register size of the compiled program.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of bindable parameters (= number of input rotations, including
    /// trivial ones, whose angles are accepted and ignored).
    #[must_use]
    pub fn num_params(&self) -> usize {
        self.num_params
    }

    /// CNOT count of the skeleton (invariant under binding: the peephole
    /// only ever removes gates).
    #[must_use]
    pub fn skeleton_cnot_count(&self) -> usize {
        self.skeleton.cnot_count()
    }

    /// The extracted Clifford subcircuit shared by every binding.
    #[must_use]
    pub fn extracted(&self) -> &Circuit {
        &self.extracted
    }

    /// The batch absorption recipe shared by every binding (the extracted
    /// Clifford — and hence CA-Pre/CA-Post — is angle-independent).
    #[must_use]
    pub fn absorption_plan(&self) -> &AbsorptionPlan {
        &self.absorption
    }

    /// CA-Pre on an observable set, memoized per template: the first call
    /// conjugates the whole set through the extracted Clifford in one
    /// word-parallel frame sweep; repeat calls with the same set return the
    /// shared result without re-conjugating anything (hash lookup plus an
    /// exact equality check — collisions recompute, never corrupt).
    ///
    /// The memo is shared across clones of the template, so an
    /// [`crate::Engine`] cache hit reuses rewritten sets from earlier binds.
    ///
    /// # Panics
    ///
    /// Panics if an observable's qubit count differs from the template's.
    #[must_use]
    pub fn absorb_observables(&self, observables: &[SignedPauli]) -> Arc<AbsorbedObservables> {
        let key = observable_set_key(observables);
        // Both acquisitions recover from lock poisoning: the memo map only
        // holds `Arc`s and every mutation below is a single HashMap
        // operation, so it is structurally valid at every panic point. A
        // panicked request (e.g. an `absorb` on mismatched register sizes,
        // contained by the engine) must not disable the memo for the
        // template's remaining lifetime.
        if let Some(entry) = self
            .absorbed_memo
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(&key)
        {
            if entry.observables == observables {
                return Arc::clone(&entry.absorbed);
            }
        }
        let start = Instant::now();
        let absorbed = Arc::new(self.absorption.absorb(observables));
        if let Some(metrics) = &self.stage_metrics {
            metrics.absorb_pre.record_duration(start.elapsed());
        }
        let mut memo = self
            .absorbed_memo
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if memo.len() >= ABSORBED_MEMO_CAPACITY && !memo.contains_key(&key) {
            // Drop an arbitrary entry: the memo is a convenience cache, not
            // an LRU; workloads rarely exceed a handful of sets.
            if let Some(&evict) = memo.keys().next() {
                memo.remove(&evict);
            }
        }
        memo.insert(
            key,
            AbsorbedEntry {
                observables: observables.to_vec(),
                absorbed: Arc::clone(&absorbed),
            },
        );
        absorbed
    }

    /// The measurement-reduction plan for an observable set, memoized per
    /// template: CA-Pre absorbs the set (reusing [`Self::absorb_observables`]'s
    /// memo), then the absorbed frame is partitioned into general-commuting
    /// groups and each group gets a diagonalizing Clifford plus a composed
    /// affine readout map. Repeat calls with the same set return the shared
    /// `Arc` without re-diagonalizing (hash lookup plus exact equality —
    /// collisions recompute, never corrupt). Shared across template clones,
    /// so an [`crate::Engine`] cache hit reuses plans from earlier requests.
    ///
    /// Only the grouping + diagonalization work (memo misses) is recorded in
    /// the `diagonalize` stage histogram; the CA-Pre part records under
    /// `absorb_pre` as usual.
    ///
    /// # Panics
    ///
    /// Panics if an observable's qubit count differs from the template's.
    #[must_use]
    pub fn measurement_plan(&self, observables: &[SignedPauli]) -> Arc<MeasurementPlan> {
        let key = observable_set_key(observables);
        // Poison recovery mirrors `absorb_observables`: every mutation is a
        // single structurally-safe HashMap operation, and a contained panic
        // in one request must not disable the memo.
        if let Some(entry) = self
            .measurement_memo
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(&key)
        {
            if entry.observables == observables {
                return Arc::clone(&entry.plan);
            }
        }
        let absorbed = self.absorb_observables(observables);
        let start = Instant::now();
        let plan = Arc::new(MeasurementPlan::from_absorbed(&absorbed));
        if let Some(metrics) = &self.stage_metrics {
            metrics.diagonalize.record_duration(start.elapsed());
        }
        let mut memo = self
            .measurement_memo
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if memo.len() >= MEASUREMENT_MEMO_CAPACITY && !memo.contains_key(&key) {
            if let Some(&evict) = memo.keys().next() {
                memo.remove(&evict);
            }
        }
        memo.insert(
            key,
            MeasurementEntry {
                observables: observables.to_vec(),
                plan: Arc::clone(&plan),
            },
        );
        plan
    }

    /// The CA-Post shot absorber for this template's extracted Clifford,
    /// built on first use and shared across template clones (so an engine
    /// cache hit never re-derives the affine map).
    ///
    /// # Errors
    ///
    /// Returns the underlying [`AbsorptionError`] when the extracted
    /// Clifford is not a basis layer + CNOT network (Proposition 1 of the
    /// QuCLEAR paper does not apply); the error is memoized too, so
    /// repeated probes of a non-absorbable template stay cheap.
    pub fn probability_absorber(&self) -> Result<Arc<ProbabilityAbsorber>, AbsorptionError> {
        self.probability_absorber
            .get_or_init(|| ProbabilityAbsorber::from_extracted(&self.extracted).map(Arc::new))
            .clone()
    }
}

/// Locates every marker slot in the peephole-optimized marker skeleton.
///
/// A surviving slot carries angle `±(i+1) + c·π/2`: the marker value,
/// possibly sign-flipped, plus a constant folded in by Z-axis merges. The
/// decomposition is unique (an integer is a multiple of `π/2` only at zero),
/// and constants synthesized by Clifford-run fusion always lie *on* the
/// `π/2` grid, so they decode to `i = none` and are skipped.
///
/// Returns `None` — meaning "bind from the raw skeleton instead" — unless
/// the decoded parameters are exactly the raw skeleton's slot parameters,
/// each appearing once. That rules out the one ambiguous case: the peephole
/// merging two marker slots into a single rotation (`θᵢ + θⱼ`, whose marker
/// angle would decode as some unrelated single parameter); a merge always
/// changes the surviving parameter set, so set equality detects it. The
/// slow path stays bit-for-bit correct for such templates.
fn decode_optimized_slots(
    optimized: &Circuit,
    num_params: usize,
    raw_slots: &[RzSlot],
) -> Option<Vec<OptimizedSlot>> {
    use std::f64::consts::FRAC_PI_2;
    const TOL: f64 = 1e-6;
    let mut slots = Vec::new();
    let mut seen = vec![false; num_params];
    for (gate_idx, gate) in optimized.gates().iter().enumerate() {
        let Gate::Rz { angle, .. } = gate else {
            continue;
        };
        let mut decoded = None;
        for c in -16i32..=16 {
            let residual = angle - f64::from(c) * FRAC_PI_2;
            let k = residual.round();
            if (residual - k).abs() < TOL && k != 0.0 && k.abs() <= num_params as f64 {
                decoded = Some((k, f64::from(c) * FRAC_PI_2));
                break;
            }
        }
        let Some((k, offset)) = decoded else {
            // Not decodable as a slot. Constants synthesized by Clifford
            // fusion and Z-axis merges lie on the π/2 grid; anything off
            // the grid is unexplained → slow path.
            let angle = match gate {
                Gate::Rz { angle, .. } => *angle,
                _ => unreachable!(),
            };
            let steps = angle / FRAC_PI_2;
            if (steps - steps.round()).abs() > TOL {
                return None;
            }
            continue;
        };
        let param = k.abs() as usize - 1;
        if seen[param] {
            return None; // duplicate decode; be conservative
        }
        seen[param] = true;
        slots.push(OptimizedSlot {
            gate: gate_idx,
            param,
            sign: k.signum(),
            offset,
        });
    }
    // The surviving parameter set must match the raw skeleton's exactly.
    let mut raw_params: Vec<usize> = raw_slots.iter().map(|s| s.param).collect();
    let mut found_params: Vec<usize> = slots.iter().map(|s| s.param).collect();
    raw_params.sort_unstable();
    found_params.sort_unstable();
    if raw_params != found_params {
        return None;
    }
    Some(slots)
}

#[cfg(test)]
mod tests {
    use super::*;
    use quclear_core::compile;

    fn rot(s: &str, angle: f64) -> PauliRotation {
        PauliRotation::parse(s, angle).unwrap()
    }

    #[test]
    fn bind_matches_direct_compile_on_the_motivating_example() {
        let config = QuClearConfig::default();
        let program = vec![rot("ZZZZ", 0.37), rot("YYXX", -0.91)];
        let template = CompiledTemplate::compile_program(&program, &config).unwrap();
        let bound = template.bind(&[0.37, -0.91]).unwrap();
        let direct = compile(&program, &config);
        assert_eq!(bound.optimized.gates(), direct.optimized.gates());
        assert_eq!(bound.extracted.gates(), direct.extracted.gates());
        assert_eq!(bound.heisenberg, direct.heisenberg);
    }

    #[test]
    fn rebinding_changes_only_angles() {
        let config = QuClearConfig::without_peephole();
        let program = vec![rot("ZZI", 0.1), rot("IXX", 0.2), rot("YIZ", 0.3)];
        let template = CompiledTemplate::compile_program(&program, &config).unwrap();
        let a = template.bind(&[0.1, 0.2, 0.3]).unwrap();
        let b = template.bind(&[2.1, -0.7, 0.9]).unwrap();
        assert_eq!(a.optimized.len(), b.optimized.len());
        assert_eq!(a.cnot_count(), b.cnot_count());
        // Same structure, different Rz angles.
        let angles = |c: &Circuit| -> Vec<f64> {
            c.gates()
                .iter()
                .filter_map(|g| match g {
                    Gate::Rz { angle, .. } => Some(*angle),
                    _ => None,
                })
                .collect()
        };
        assert_ne!(angles(&a.optimized), angles(&b.optimized));
    }

    #[test]
    fn negative_axis_sign_folds_into_the_bound_angle() {
        let config = QuClearConfig::default();
        let minus: SignedPauli = "-ZZ".parse().unwrap();
        let template = CompiledTemplate::compile(std::slice::from_ref(&minus), &config).unwrap();
        let bound = template.bind(&[0.8]).unwrap();
        let direct = compile(&[PauliRotation::with_signed_pauli(minus, 0.8)], &config);
        assert_eq!(bound.optimized.gates(), direct.optimized.gates());
    }

    #[test]
    fn trivial_rotations_consume_a_parameter_slot() {
        let config = QuClearConfig::default();
        let program = vec![rot("III", 0.5), rot("ZZZ", 0.3)];
        let template = CompiledTemplate::compile_program(&program, &config).unwrap();
        assert_eq!(template.num_params(), 2);
        let bound = template.bind(&[9.9, 0.3]).unwrap();
        let direct = compile(&program, &config);
        assert_eq!(bound.optimized.gates(), direct.optimized.gates());
    }

    #[test]
    fn bind_optimized_matches_bind() {
        let config = QuClearConfig::default();
        let program = vec![rot("ZZZZ", 0.37), rot("YYXX", -0.91)];
        let template = CompiledTemplate::compile_program(&program, &config).unwrap();
        let full = template.bind(&[0.4, 0.5]).unwrap();
        let light = template.bind_optimized(&[0.4, 0.5]).unwrap();
        assert_eq!(full.optimized.gates(), light.gates());
    }

    #[test]
    fn bind_validates_inputs() {
        let config = QuClearConfig::default();
        let template = CompiledTemplate::compile_program(&[rot("XX", 0.1)], &config).unwrap();
        assert_eq!(
            template.bind(&[]).unwrap_err(),
            EngineError::AngleCountMismatch {
                expected: 1,
                found: 0
            }
        );
        assert_eq!(
            template.bind(&[f64::NAN]).unwrap_err(),
            EngineError::NonFiniteAngle { index: 0 }
        );
    }

    #[test]
    fn mixed_register_sizes_are_rejected() {
        let config = QuClearConfig::default();
        let program = vec![rot("XX", 0.1), rot("XXX", 0.2)];
        let err = CompiledTemplate::compile_program(&program, &config).unwrap_err();
        assert_eq!(
            err,
            EngineError::InconsistentQubitCounts {
                expected: 2,
                found: 3,
                index: 1
            }
        );
    }

    #[test]
    fn empty_program_binds_to_empty_result() {
        let config = QuClearConfig::default();
        let template = CompiledTemplate::compile(&[], &config).unwrap();
        assert_eq!(template.num_params(), 0);
        let bound = template.bind(&[]).unwrap();
        assert!(bound.optimized.is_empty());
        assert!(bound.extracted.is_empty());
    }
}

//! Long-running-service robustness: panic isolation and request coalescing.
//!
//! A compile-once/serve-many engine lives for days inside one process, so a
//! single panicking request must never take out sibling requests (batch
//! isolation), future requests (no poisoned shard cascades), or requests
//! that happened to be waiting on the same compilation (single-flight
//! abandon handling). These tests drive those properties through the public
//! `Engine` API, using the engine's fault-injection hook to model a panic on
//! the template-lookup path — the code that used to sit *outside*
//! `compile_batch`'s per-job `catch_unwind`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

use quclear_core::QuClearConfig;
use quclear_engine::{BatchJob, Engine, EngineError, ProgramFingerprint};
use quclear_pauli::PauliRotation;

fn rot(s: &str, angle: f64) -> PauliRotation {
    PauliRotation::parse(s, angle).unwrap()
}

fn fingerprint_of(program: &[PauliRotation], engine: &Engine) -> ProgramFingerprint {
    ProgramFingerprint::of_program(program, engine.config())
}

/// A structure large enough that its extraction takes a visible amount of
/// time, so concurrent misses actually overlap in flight.
fn slow_program(tag: u64) -> Vec<PauliRotation> {
    let ops = ['X', 'Y', 'Z', 'I'];
    (0..24u64)
        .map(|i| {
            let mut axis = String::new();
            let mut state = tag
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(i.wrapping_mul(0x517C_C1B7_2722_0A95));
            for _ in 0..10 {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                axis.push(ops[(state % 4) as usize]);
            }
            if !axis.bytes().any(|b| b != b'I') {
                axis.replace_range(0..1, "Z");
            }
            rot(&axis, 0.1 + i as f64 * 0.05)
        })
        .collect()
}

/// Satellite regression: a job whose *lookup* panics (not just its bind)
/// must fail alone. Before the fix, `template_for` sat outside the per-job
/// `catch_unwind`, so this panic unwound through the parallel runner and
/// tore down the entire batch.
#[test]
fn panicking_job_is_isolated_in_a_batch() {
    let engine = Engine::new(32);
    let poisoned_program = vec![rot("XYZX", 0.4), rot("ZZXX", 0.2)];
    engine.inject_lookup_panic(Some(fingerprint_of(&poisoned_program, &engine)));

    let jobs = vec![
        BatchJob::new(vec![rot("ZZII", 0.4)]),
        BatchJob::new(poisoned_program.clone()),
        BatchJob::with_angles(vec![rot("IXXI", 0.0)], vec![1.25]),
        // A second doomed job: isolation must hold per job, not just once.
        BatchJob::with_angles(poisoned_program.clone(), vec![0.5, 0.6]),
        BatchJob::new(vec![rot("YYYY", -0.7)]),
    ];
    let results = engine.compile_batch(&jobs);
    assert_eq!(results.len(), 5);
    assert!(results[0].is_ok(), "healthy job 0 must succeed");
    assert!(
        matches!(results[1], Err(EngineError::CompilationPanicked { .. })),
        "the panicking job must fail in its own slot, got {:?}",
        results[1]
    );
    assert!(results[2].is_ok(), "healthy job 2 must succeed");
    assert!(matches!(
        results[3],
        Err(EngineError::CompilationPanicked { .. })
    ));
    assert!(results[4].is_ok(), "healthy job 4 must succeed");

    // The panic left no residue: disarmed, the same structure compiles.
    engine.inject_lookup_panic(None);
    assert!(engine.compile(&poisoned_program).is_ok());
}

/// A panicking request must not poison state consulted by *other*
/// structures: while the fault is armed for one fingerprint, every other
/// program keeps compiling — including ones that share a cache shard with
/// the doomed key (with a single shard, all of them do).
#[test]
fn panicking_request_does_not_poison_other_structures() {
    let engine = Engine::with_shards(16, 1, QuClearConfig::default());
    let doomed = vec![rot("XXXX", 0.3)];
    engine.inject_lookup_panic(Some(fingerprint_of(&doomed, &engine)));

    for i in 0..8 {
        let healthy = vec![rot("ZZII", 0.1 * f64::from(i)), rot("IXXI", 0.2)];
        assert!(engine.compile(&healthy).is_ok(), "round {i}");
        let batch = engine.compile_batch(&[
            BatchJob::new(doomed.clone()),
            BatchJob::new(vec![rot("YYII", 0.4)]),
        ]);
        assert!(matches!(
            batch[0],
            Err(EngineError::CompilationPanicked { .. })
        ));
        assert!(
            batch[1].is_ok(),
            "same-shard neighbour must survive round {i}"
        );
    }

    engine.inject_lookup_panic(None);
    assert!(engine.compile(&doomed).is_ok(), "no lasting damage");
}

/// Tentpole property: K concurrent requests for one uncached structure run
/// exactly one extraction. The leader misses; everyone else either waits on
/// the flight (counted in `coalesced_waits`) or arrives after publication
/// (a plain hit) — in every schedule, `misses == 1`.
#[test]
fn concurrent_identical_requests_compile_once() {
    let engine = Arc::new(Engine::new(64));
    let program = slow_program(7);
    let threads = 16;
    let barrier = Arc::new(Barrier::new(threads));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let engine = Arc::clone(&engine);
            let program = program.clone();
            let barrier = Arc::clone(&barrier);
            scope.spawn(move || {
                barrier.wait();
                engine.compile(&program).expect("compile must succeed");
            });
        }
    });
    let stats = engine.stats();
    assert_eq!(stats.misses, 1, "single flight: exactly one extraction");
    assert_eq!(stats.hits, threads as u64 - 1);
    assert_eq!(stats.entries, 1);
    assert_eq!(stats.binds, threads as u64);
    // `coalesced_waits` counts the subset of hits that actually parked on
    // the in-flight compile; scheduling decides how many, and the snapshot
    // must agree with the hit accounting.
    assert!(stats.coalesced_waits <= stats.hits);
}

/// With the compile window held open (injected delay), every concurrent
/// identical request demonstrably parks on the single flight: the
/// coalesced-wait counter is exact, not best-effort.
#[test]
fn coalesced_waits_are_counted() {
    let engine = Arc::new(Engine::new(64));
    let program = vec![rot("ZXYZ", 0.3), rot("YZZX", -0.4)];
    let fingerprint = fingerprint_of(&program, &engine);
    engine.inject_compile_delay(Some((fingerprint, std::time::Duration::from_millis(750))));
    let threads = 4;
    let barrier = Arc::new(Barrier::new(threads));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let engine = Arc::clone(&engine);
            let program = program.clone();
            let barrier = Arc::clone(&barrier);
            scope.spawn(move || {
                barrier.wait();
                engine.compile(&program).expect("compile must succeed");
            });
        }
    });
    engine.inject_compile_delay(None);
    let stats = engine.stats();
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.hits, threads as u64 - 1);
    assert!(
        stats.coalesced_waits >= threads as u64 / 2,
        "the 750ms in-flight window must catch most concurrent requests \
         (got {})",
        stats.coalesced_waits
    );
}

/// Distinct structures must never wait on each other's flights.
#[test]
fn distinct_structures_do_not_coalesce() {
    let engine = Arc::new(Engine::new(64));
    let threads = 8;
    let barrier = Arc::new(Barrier::new(threads));
    std::thread::scope(|scope| {
        for t in 0..threads {
            let engine = Arc::clone(&engine);
            let barrier = Arc::clone(&barrier);
            scope.spawn(move || {
                barrier.wait();
                let program = slow_program(100 + t as u64);
                engine.compile(&program).expect("compile must succeed");
            });
        }
    });
    let stats = engine.stats();
    assert_eq!(stats.misses, threads as u64);
    assert_eq!(stats.coalesced_waits, 0);
    assert_eq!(stats.entries, threads);
}

/// Stats stay within their documented invariants while requests hammer the
/// engine from many threads: every snapshot taken mid-flight keeps
/// `hit_rate` in `[0, 1]` and `entries <= capacity`.
#[test]
fn stats_snapshots_stay_coherent_under_load() {
    let engine = Arc::new(Engine::with_shards(4, 4, QuClearConfig::default()));
    let snapshots_bad = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        for t in 0..4u64 {
            let engine = Arc::clone(&engine);
            scope.spawn(move || {
                for i in 0..50u64 {
                    // More structures than capacity: constant eviction
                    // churn while snapshots are taken.
                    let program = vec![
                        rot("ZZII", 0.01 * (t * 50 + i) as f64),
                        rot(
                            ["XXII", "YYII", "XYZI", "ZXYI", "IYZX", "IZZY"][(i % 6) as usize],
                            0.3,
                        ),
                    ];
                    engine.compile(&program).unwrap();
                }
            });
        }
        for _ in 0..2 {
            let engine = Arc::clone(&engine);
            let snapshots_bad = Arc::clone(&snapshots_bad);
            scope.spawn(move || {
                for _ in 0..500 {
                    let stats = engine.stats();
                    let rate = stats.hit_rate();
                    if !(0.0..=1.0).contains(&rate)
                        || stats.entries > stats.capacity
                        || stats.hits + stats.misses < stats.coalesced_waits
                    {
                        snapshots_bad.fetch_add(1, Ordering::Relaxed);
                    }
                    std::hint::spin_loop();
                }
            });
        }
    });
    assert_eq!(snapshots_bad.load(Ordering::Relaxed), 0);
    let stats = engine.stats();
    assert_eq!(stats.lookups(), 200);
    assert!(stats.entries <= stats.capacity);
}

//! Threaded stress tests of the sharded engine cache.
//!
//! These run under `--release` in CI as the cache-sharding regression gate:
//! many threads hammer one engine with a mix of distinct structures (each
//! shard takes independent write locks) and one hot structure (the
//! read-mostly hit path), and every result must still be correct,
//! deterministic per job, and accounted for in the stats.

use std::sync::Arc;

use quclear_core::{compile, QuClearConfig};
use quclear_engine::{BatchJob, Engine};
use quclear_pauli::{PauliOp, PauliRotation, PauliString};

/// A deterministic pseudo-random weight-mixed program, distinct per `tag`.
fn program(tag: u64, n: usize, rotations: usize) -> Vec<PauliRotation> {
    let mut state = tag.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..rotations)
        .map(|_| {
            let mut p = PauliString::identity(n);
            let mut weight = 0;
            for q in 0..n {
                let op = match next() % 4 {
                    0 => PauliOp::I,
                    1 => PauliOp::X,
                    2 => PauliOp::Y,
                    _ => PauliOp::Z,
                };
                if !op.is_identity() {
                    weight += 1;
                }
                p.set_op(q, op);
            }
            if weight == 0 {
                p.set_op(0, PauliOp::Z);
            }
            PauliRotation::new(p, (next() % 100) as f64 / 31.0 + 0.01)
        })
        .collect()
}

/// 32 threads × distinct structures: every shard sees traffic, no thread may
/// observe another's template, and each result equals a direct compile.
#[test]
fn thirty_two_threads_distinct_fingerprints() {
    let engine = Arc::new(Engine::new(256));
    let threads = 32;
    let per_thread = 4;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let engine = Arc::clone(&engine);
            scope.spawn(move || {
                for j in 0..per_thread {
                    let tag = (t * per_thread + j) as u64;
                    let prog = program(tag, 6, 8);
                    let got = engine.compile(&prog).expect("compile must succeed");
                    let want = compile(&prog, engine.config());
                    assert_eq!(
                        got.optimized.gates(),
                        want.optimized.gates(),
                        "thread {t} job {j} diverged from direct compile"
                    );
                }
            });
        }
    });
    let stats = engine.stats();
    assert_eq!(stats.hits + stats.misses, (threads * per_thread) as u64);
    // All structures are distinct; each was compiled at least once and the
    // cache is big enough that none was evicted.
    assert!(stats.misses >= (threads * per_thread) as u64 / 2);
    assert_eq!(stats.evictions, 0);
    assert_eq!(stats.binds, (threads * per_thread) as u64);
}

/// 32 threads × one hot structure: the read-mostly hit path must serve all
/// but the first lookup without recompiling.
#[test]
fn thirty_two_threads_one_hot_template() {
    let engine = Arc::new(Engine::new(64));
    let prog = program(999, 6, 10);
    engine.compile(&prog).expect("prime the cache");
    let threads = 32;
    let per_thread = 8;
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let engine = Arc::clone(&engine);
            let prog = prog.clone();
            scope.spawn(move || {
                for k in 0..per_thread {
                    let mut reangled = prog.clone();
                    let axis = reangled[0].pauli().clone();
                    reangled[0] = PauliRotation::new(axis, 0.01 + k as f64);
                    engine.compile(&reangled).expect("warm compile");
                }
            });
        }
    });
    let stats = engine.stats();
    assert_eq!(stats.misses, 1, "hot structure must compile exactly once");
    assert_eq!(stats.hits, (threads * per_thread) as u64);
    assert_eq!(stats.entries, 1);
}

/// `compile_batch` over a mixed batch from many threads at once: output
/// order and per-job isolation must hold under contention.
#[test]
fn concurrent_compile_batches_stay_isolated() {
    let engine = Arc::new(Engine::new(128));
    let jobs: Vec<BatchJob> = (0..24)
        .map(|i| {
            if i % 8 == 7 {
                // Malformed job: inconsistent register sizes.
                BatchJob::new(vec![
                    PauliRotation::parse("XX", 0.1).unwrap(),
                    PauliRotation::parse("XXX", 0.2).unwrap(),
                ])
            } else {
                BatchJob::new(program(i as u64 % 6, 5, 6))
            }
        })
        .collect();
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let engine = Arc::clone(&engine);
            let jobs = jobs.clone();
            scope.spawn(move || {
                let results = engine.compile_batch(&jobs);
                assert_eq!(results.len(), jobs.len());
                for (i, result) in results.iter().enumerate() {
                    if i % 8 == 7 {
                        assert!(result.is_err(), "malformed job {i} must fail");
                    } else {
                        let got = result.as_ref().expect("job must succeed");
                        let want = compile(&jobs[i].program, engine.config());
                        assert_eq!(got.optimized.gates(), want.optimized.gates());
                    }
                }
            });
        }
    });
    // 6 distinct valid structures cached; failures are never cached.
    assert_eq!(engine.stats().entries, 6);
}

/// Sweeps through the sharded cache behave identically to unsharded
/// compilation, shard count notwithstanding.
#[test]
fn sweep_results_match_across_shard_counts() {
    let prog = program(5, 6, 10);
    let angle_sets: Vec<Vec<f64>> = (0..16)
        .map(|i| (0..10).map(|j| 0.05 * (i * 10 + j) as f64 + 0.01).collect())
        .collect();
    let sharded = Engine::new(64);
    let single = Engine::with_shards(64, 1, QuClearConfig::default());
    let a = sharded.sweep(&prog, &angle_sets).expect("sharded sweep");
    let b = single
        .sweep(&prog, &angle_sets)
        .expect("single-shard sweep");
    for (ra, rb) in a.iter().zip(&b) {
        let (ra, rb) = (ra.as_ref().unwrap(), rb.as_ref().unwrap());
        assert_eq!(ra.optimized.gates(), rb.optimized.gates());
    }
}

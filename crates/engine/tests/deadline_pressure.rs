//! Singleflight under deadline pressure (satellite coverage for the
//! overload-protection PR): a waiter whose leader outlives the waiter's
//! budget must detach with `DeadlineExceeded` — and the leader's eventual
//! result must still land in the template cache for later callers.

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use quclear_engine::{Deadline, Engine, EngineError, ProgramFingerprint};
use quclear_pauli::PauliRotation;

fn rot(s: &str, angle: f64) -> PauliRotation {
    PauliRotation::parse(s, angle).unwrap()
}

fn program() -> Vec<PauliRotation> {
    vec![rot("ZZXY", 0.25), rot("YXIZ", -0.5), rot("XXYY", 1.0)]
}

#[test]
fn waiter_detaches_while_leader_still_populates_the_cache() {
    let engine = Arc::new(Engine::new(16));
    let rotations = program();
    let fingerprint = ProgramFingerprint::of_program(&rotations, engine.config());
    // Make the flight leader slow enough that a 150 ms waiter budget is
    // guaranteed to expire mid-flight.
    engine.inject_compile_delay(Some((fingerprint, Duration::from_millis(600))));

    let barrier = Arc::new(Barrier::new(2));
    std::thread::scope(|scope| {
        let leader = {
            let engine = Arc::clone(&engine);
            let rotations = rotations.clone();
            let barrier = Arc::clone(&barrier);
            scope.spawn(move || {
                barrier.wait();
                // Unbounded: rides out the injected delay and compiles.
                engine.compile(&rotations)
            })
        };
        let waiter = {
            let engine = Arc::clone(&engine);
            let rotations = rotations.clone();
            let barrier = Arc::clone(&barrier);
            scope.spawn(move || {
                barrier.wait();
                // Give the leader a head start so this thread coalesces onto
                // the in-flight compile instead of leading its own.
                std::thread::sleep(Duration::from_millis(100));
                let start = Instant::now();
                let result = engine.compile_with_deadline(
                    &rotations,
                    Deadline::within(Duration::from_millis(150)),
                );
                (result, start.elapsed())
            })
        };

        let (waiter_result, waited) = waiter.join().unwrap();
        assert_eq!(
            waiter_result.unwrap_err(),
            EngineError::DeadlineExceeded,
            "the bounded waiter must detach, not wait out the slow leader"
        );
        assert!(
            waited < Duration::from_millis(450),
            "the waiter detached at its deadline, not at flight completion (waited {waited:?})"
        );
        leader
            .join()
            .unwrap()
            .expect("the leader compiles normally");
    });
    engine.inject_compile_delay(None);

    // The detached waiter's abandonment did not disturb the flight: the
    // leader's template is cached, so a later bounded request is a pure hit
    // even with a zero budget.
    let before = engine.stats();
    engine
        .compile_with_deadline(&rotations, Deadline::within(Duration::from_millis(200)))
        .expect("warm cache serves bounded requests");
    let after = engine.stats();
    assert_eq!(after.hits, before.hits + 1, "the retry must be a cache hit");
    assert_eq!(after.entries, 1);
}

#[test]
fn many_bounded_waiters_all_detach_without_poisoning_the_flight() {
    let engine = Arc::new(Engine::new(16));
    let rotations = program();
    let fingerprint = ProgramFingerprint::of_program(&rotations, engine.config());
    engine.inject_compile_delay(Some((fingerprint, Duration::from_millis(500))));

    const WAITERS: usize = 6;
    let barrier = Arc::new(Barrier::new(WAITERS + 1));
    std::thread::scope(|scope| {
        let leader = {
            let engine = Arc::clone(&engine);
            let rotations = rotations.clone();
            let barrier = Arc::clone(&barrier);
            scope.spawn(move || {
                barrier.wait();
                engine.compile(&rotations)
            })
        };
        let waiters: Vec<_> = (0..WAITERS)
            .map(|_| {
                let engine = Arc::clone(&engine);
                let rotations = rotations.clone();
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    barrier.wait();
                    std::thread::sleep(Duration::from_millis(80));
                    engine.compile_with_deadline(
                        &rotations,
                        Deadline::within(Duration::from_millis(120)),
                    )
                })
            })
            .collect();
        for waiter in waiters {
            assert_eq!(
                waiter.join().unwrap().unwrap_err(),
                EngineError::DeadlineExceeded
            );
        }
        leader.join().unwrap().expect("the leader is unaffected");
    });
    engine.inject_compile_delay(None);

    let stats = engine.stats();
    // Every lookup is accounted: the leader's miss plus one miss per
    // detached waiter; detached waiters never count as coalesced.
    assert_eq!(stats.misses, 1 + WAITERS as u64);
    assert!(
        stats.coalesced_waits <= stats.hits + stats.misses,
        "snapshot invariant must survive detaches"
    );
    // And the template is there for everyone afterwards.
    engine.compile(&rotations).unwrap();
    assert_eq!(engine.stats().hits, 1);
}

//! Schedule-exhaustive models for the engine's concurrency primitives.
//!
//! Built only with `--features sched-model`: `engine::sync` routes
//! `Mutex`/`Condvar`/`RwLock`/atomics/`Instant` through the `quclear-sched`
//! deterministic scheduler, so these tests explore thread interleavings
//! exhaustively (bounded DFS, including timed condvar waits driven by a
//! virtual clock) instead of sampling whatever the OS happens to produce.
//! Run with:
//!
//! ```text
//! cargo test -p quclear-engine --features sched-model --test sched_models
//! ```

use std::time::Duration;

use quclear_engine::singleflight::Role;
use quclear_engine::{ShardedCache, SingleFlight};
use quclear_sched::sync::atomic::{AtomicU64, Ordering};
use quclear_sched::sync::Arc;
use quclear_sched::time::Instant;
use quclear_sched::{thread, Explorer};

/// A leader that panics mid-computation must never strand its waiter: in
/// every interleaving the waiter completes (re-leading after the abandon if
/// it had parked), the panic stays contained to the leader's caller, and the
/// in-flight table drains to empty.
#[test]
fn singleflight_panicking_leader_never_strands_waiter() {
    let report = Explorer::dfs().check(|| {
        let sf: Arc<SingleFlight<u32, u32>> = Arc::new(SingleFlight::new());
        let sf2 = Arc::clone(&sf);
        let leader = thread::spawn(move || {
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                sf2.run(&3, || -> u32 { panic!("leader dies") })
            }));
            match caught {
                // Led: the closure ran, the panic propagated to this caller.
                Err(_) => {}
                // Arrived while the other call's flight was open: coalesced
                // onto it, so the panicking closure never ran.
                Ok((v, Role::Coalesced)) => assert_eq!(v, 99),
                Ok((_, Role::Led)) => panic!("leading must run the panicking closure"),
            }
        });
        // Whatever the schedule — before the leader, parked on its flight,
        // or after the abandon — this call must complete with 99.
        let (value, _role) = sf.run(&3, || 99);
        assert_eq!(value, 99, "only the non-panicking closure produces a value");
        leader.join().unwrap();
        assert_eq!(sf.in_flight(), 0, "no flight may outlive its callers");
    });
    report.assert_passed();
    assert!(report.exhausted, "bounded DFS space fully enumerated");
    eprintln!(
        "singleflight panicking-leader model: {} interleavings explored",
        report.schedules
    );
}

/// Hit/miss accounting around `run_with_deadline`, mirroring the discipline
/// `Engine::template_with_deadline` uses: a led call counts a miss (inside
/// the closure), a coalesced call counts a hit then bumps the coalesced
/// counter with `Release`, and a *detached* waiter counts a miss. The
/// invariants: every lookup is accounted exactly once (`hits + misses ==
/// lookups` after the dust settles), and a stats-order reader (coalesced
/// first with `Acquire`) never observes `coalesced > hits`.
#[test]
fn singleflight_detach_keeps_hit_miss_accounting() {
    struct Counters {
        hits: AtomicU64,
        misses: AtomicU64,
        coalesced: AtomicU64,
    }

    fn lookup(sf: &SingleFlight<u32, u32>, c: &Counters, deadline: Option<Instant>) {
        match sf.run_with_deadline(&1, deadline, || {
            c.misses.fetch_add(1, Ordering::Relaxed);
            42
        }) {
            // Detached at the deadline: the engine counts it as a miss
            // (the caller got no template from the cache or the flight).
            None => {
                c.misses.fetch_add(1, Ordering::Relaxed);
            }
            // The closure already counted the miss.
            Some((_, Role::Led)) => {}
            Some((_, Role::Coalesced)) => {
                c.hits.fetch_add(1, Ordering::Relaxed);
                // ordering: Release pairs with the stats reader's Acquire so
                // a snapshot that sees this coalesced wait also sees its hit.
                c.coalesced.fetch_add(1, Ordering::Release);
            }
        }
    }

    let report = Explorer::dfs().max_schedules(60_000).check(|| {
        let sf: Arc<SingleFlight<u32, u32>> = Arc::new(SingleFlight::new());
        let counters = Arc::new(Counters {
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
        });
        let (sf1, c1) = (Arc::clone(&sf), Arc::clone(&counters));
        let unbounded = thread::spawn(move || lookup(&sf1, &c1, None));
        let (sf2, c2) = (Arc::clone(&sf), Arc::clone(&counters));
        let bounded = thread::spawn(move || {
            // One millisecond of virtual time: DFS explores both the
            // timeout firing (detach) and the leader finishing first.
            let deadline = Instant::now() + Duration::from_millis(1);
            lookup(&sf2, &c2, Some(deadline));
        });
        // Stats-order reader, concurrent with both lookups: coalesced is
        // read first (Acquire), so it can never exceed the hits read after.
        let coalesced_seen = counters.coalesced.load(Ordering::Acquire);
        let hits_seen = counters.hits.load(Ordering::Relaxed);
        assert!(
            coalesced_seen <= hits_seen,
            "snapshot saw coalesced={coalesced_seen} > hits={hits_seen}"
        );
        unbounded.join().unwrap();
        bounded.join().unwrap();
        let (h, m) = (
            counters.hits.load(Ordering::Relaxed),
            counters.misses.load(Ordering::Relaxed),
        );
        assert_eq!(h + m, 2, "2 lookups must be accounted exactly once each");
        assert!(counters.coalesced.load(Ordering::Relaxed) <= h);
        assert_eq!(sf.in_flight(), 0);
    });
    report.assert_passed();
    eprintln!(
        "singleflight detach-accounting model: {} interleavings explored",
        report.schedules
    );
}

/// Two racing inserts into a full single-shard cache: the reserve-then-evict
/// protocol may overshoot `capacity` transiently by at most the number of
/// in-progress inserts (the documented slack), and must settle at exactly
/// `capacity` once both inserts finish — every interleaving, including the
/// ones where both threads have reserved before either evicts.
#[test]
fn sharded_cache_len_stays_bounded_mid_eviction() {
    let report = Explorer::dfs().check(|| {
        let cache: Arc<ShardedCache<u32, u32>> = Arc::new(ShardedCache::new(1, 1));
        let (c1, c2) = (Arc::clone(&cache), Arc::clone(&cache));
        let a = thread::spawn(move || c1.insert(1, Arc::new(10)));
        let b = thread::spawn(move || c2.insert(2, Arc::new(20)));
        // Mid-flight: len never exceeds capacity + in-progress inserts and
        // is never wildly off (no double-reserve, no lost decrement).
        let mid = cache.len();
        assert!(
            mid <= cache.capacity() + 2,
            "len {mid} exceeds capacity plus in-progress inserts"
        );
        a.join().unwrap();
        b.join().unwrap();
        assert_eq!(
            cache.len(),
            1,
            "two inserts into a capacity-1 cache must evict exactly one entry"
        );
        // Exactly one of the keys survived.
        let survivors = [cache.get(&1).is_some(), cache.get(&2).is_some()];
        assert_eq!(survivors.iter().filter(|&&s| s).count(), 1);
    });
    report.assert_passed();
    eprintln!(
        "sharded-cache eviction model: {} interleavings explored",
        report.schedules
    );
}

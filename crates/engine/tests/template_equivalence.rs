//! Property-based and simulator-backed validation of the template engine:
//! a warm `bind` must reproduce a from-scratch `compile` gate for gate, and
//! remain unitarily correct even in the zero-angle corner where the two
//! pipelines legitimately produce different gate lists.

use proptest::prelude::*;
use quclear_core::{compile, QuClearConfig};
use quclear_engine::{BatchJob, CompiledTemplate, Engine};
use quclear_pauli::{PauliOp, PauliRotation, PauliString};
use quclear_sim::StateVector;

/// Random rotation programs on `n` qubits with non-zero angles (the regime
/// where bind/compile equivalence is exact).
fn rotation_strategy(n: usize, len: usize) -> impl Strategy<Value = Vec<PauliRotation>> {
    let single = (prop::collection::vec(0u8..4, n), 1u8..2, 0.05f64..2.9).prop_map(
        move |(ops, sign_bit, magnitude)| {
            let ops: Vec<PauliOp> = ops
                .into_iter()
                .map(|v| match v {
                    0 => PauliOp::I,
                    1 => PauliOp::X,
                    2 => PauliOp::Y,
                    _ => PauliOp::Z,
                })
                .collect();
            let angle = if sign_bit == 0 { -magnitude } else { magnitude };
            PauliRotation::new(PauliString::from_ops(&ops), angle)
        },
    );
    prop::collection::vec(single, 1..=len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline invariant: binding a template with a program's angles is
    /// gate-for-gate identical to compiling that program from scratch, for
    /// both pipeline configurations.
    #[test]
    fn bind_is_gate_for_gate_equivalent_to_compile(
        program in rotation_strategy(5, 8),
        peephole in any::<bool>(),
    ) {
        let config = if peephole {
            QuClearConfig::full()
        } else {
            QuClearConfig::without_peephole()
        };
        let template = CompiledTemplate::compile_program(&program, &config).unwrap();
        let bound = template.bind_program(&program).unwrap();
        let direct = compile(&program, &config);
        prop_assert_eq!(bound.optimized.gates(), direct.optimized.gates());
        prop_assert_eq!(bound.extracted.gates(), direct.extracted.gates());
        prop_assert_eq!(&bound.heisenberg, &direct.heisenberg);
    }

    /// Rebinding to fresh angles equals a fresh compile of the re-angled
    /// program — the sweep use case.
    #[test]
    fn rebind_tracks_fresh_compiles(
        program in rotation_strategy(4, 6),
        new_angles in prop::collection::vec(0.05f64..3.0, 6),
    ) {
        let config = QuClearConfig::default();
        let template = CompiledTemplate::compile_program(&program, &config).unwrap();
        let angles: Vec<f64> = program
            .iter()
            .enumerate()
            .map(|(i, _)| new_angles[i % new_angles.len()])
            .collect();
        let bound = template.bind(&angles).unwrap();

        let reangled: Vec<PauliRotation> = program
            .iter()
            .zip(&angles)
            .map(|(r, &a)| PauliRotation::new(r.pauli().clone(), a))
            .collect();
        let direct = compile(&reangled, &config);
        prop_assert_eq!(bound.optimized.gates(), direct.optimized.gates());
    }

    /// With exact-zero angles the gate lists may differ (direct compilation
    /// skips the rotation, the template keeps its Clifford structure), but
    /// the implemented unitary must not.
    #[test]
    fn zero_angles_stay_unitarily_correct(
        program in rotation_strategy(4, 5),
        zero_mask in prop::collection::vec(any::<bool>(), 5),
    ) {
        let config = QuClearConfig::default();
        let template = CompiledTemplate::compile_program(&program, &config).unwrap();
        let angles: Vec<f64> = program
            .iter()
            .enumerate()
            .map(|(i, r)| if zero_mask[i % zero_mask.len()] { 0.0 } else { r.angle() })
            .collect();
        let bound = template.bind(&angles).unwrap();

        let zeroed: Vec<PauliRotation> = program
            .iter()
            .zip(&angles)
            .map(|(r, &a)| PauliRotation::new(r.pauli().clone(), a))
            .collect();
        let direct = compile(&zeroed, &config);
        let bound_state = StateVector::from_circuit(&bound.full_circuit());
        let direct_state = StateVector::from_circuit(&direct.full_circuit());
        prop_assert!(
            bound_state.approx_eq_up_to_phase(&direct_state, 1e-8),
            "zero-angle binding changed the unitary"
        );
    }

    /// The engine front-end preserves the equivalence through its cache.
    #[test]
    fn engine_compile_matches_core_compile(program in rotation_strategy(4, 6)) {
        let engine = Engine::new(16);
        let via_engine = engine.compile(&program).unwrap();
        let direct = compile(&program, &QuClearConfig::default());
        prop_assert_eq!(via_engine.optimized.gates(), direct.optimized.gates());
    }
}

/// Regression for the ROADMAP slot-merge fallback: when the *marker*
/// peephole merges two parameterized rotations (identical adjacent axes),
/// the template cannot patch the optimized skeleton and must fall back to
/// binding from the raw skeleton — which still reproduces a from-scratch
/// compile gate for gate.
#[test]
fn compile_time_slot_merge_falls_back_to_the_raw_skeleton() {
    let config = QuClearConfig::default();
    let program = vec![
        PauliRotation::parse("ZZ", 0.3).unwrap(),
        PauliRotation::parse("ZZ", 0.5).unwrap(),
    ];
    let template = CompiledTemplate::compile_program(&program, &config).unwrap();
    assert_eq!(template.num_params(), 2);
    for angles in [[0.3, 0.5], [1.1, -0.4], [0.25, 0.25]] {
        let bound = template.bind(&angles).unwrap();
        let reangled: Vec<PauliRotation> = program
            .iter()
            .zip(&angles)
            .map(|(r, &a)| PauliRotation::new(r.pauli().clone(), a))
            .collect();
        let direct = compile(&reangled, &config);
        assert_eq!(
            bound.optimized.gates(),
            direct.optimized.gates(),
            "slot-merge fallback must stay gate-for-gate exact at {angles:?}"
        );
    }
}

/// Regression for the other half of the ROADMAP note: two parameterized
/// rotations that become *adjacent only after a zero-angle bind* (the
/// rotation between them vanishes) must trigger the full peephole rerun and
/// stay sim-equivalent to a from-scratch compile, even though the merged
/// gate lists legitimately differ.
#[test]
fn zero_angle_adjacency_merge_falls_back_and_stays_equivalent() {
    use quclear_circuit::Gate;
    let config = QuClearConfig::default();
    let cases: [&[&str]; 2] = [&["ZZ", "XX", "ZZ"], &["ZZI", "IXX", "ZZI"]];
    for axes in cases {
        let program: Vec<PauliRotation> = axes
            .iter()
            .map(|p| PauliRotation::parse(p, 0.3).unwrap())
            .collect();
        let template = CompiledTemplate::compile_program(&program, &config).unwrap();
        let angles = [0.3, 0.0, 0.5];
        let bound = template.bind(&angles[..axes.len()]).unwrap();
        let zeroed: Vec<PauliRotation> = program
            .iter()
            .zip(&angles)
            .map(|(r, &a)| PauliRotation::new(r.pauli().clone(), a))
            .collect();
        let direct = compile(&zeroed, &config);
        // The from-scratch compile merges the now-adjacent rotations into a
        // single Rz — fewer parameterized gates than template slots.
        let rz = |c: &quclear_circuit::Circuit| {
            c.gates()
                .iter()
                .filter(|g| matches!(g, Gate::Rz { .. }))
                .count()
        };
        assert!(
            rz(&direct.optimized) < axes.len(),
            "direct compile of {axes:?} must merge the adjacent rotations"
        );
        let bound_state = StateVector::from_circuit(&bound.full_circuit());
        let direct_state = StateVector::from_circuit(&direct.full_circuit());
        assert!(
            bound_state.approx_eq_up_to_phase(&direct_state, 1e-8),
            "zero-angle adjacency merge broke equivalence for {axes:?}"
        );
    }
}

/// Batch compilation over a mixed workload: outputs arrive in input order
/// and agree with sequential compilation.
#[test]
fn batch_results_are_ordered_and_correct() {
    let engine = Engine::new(16);
    let structures = ["ZZII", "IXXI", "IIYY", "XIIX", "YZYZ"];
    let jobs: Vec<BatchJob> = (0..40)
        .map(|i| {
            let pauli = structures[i % structures.len()];
            let angle = 0.07 * (i + 1) as f64;
            BatchJob::new(vec![
                PauliRotation::parse(pauli, angle).unwrap(),
                PauliRotation::parse("ZZZZ", -angle).unwrap(),
            ])
        })
        .collect();
    let results = engine.compile_batch(&jobs);
    assert_eq!(results.len(), jobs.len());
    for (job, result) in jobs.iter().zip(&results) {
        let got = result.as_ref().expect("job must succeed");
        let want = compile(&job.program, engine.config());
        assert_eq!(got.optimized.gates(), want.optimized.gates());
    }
    // Five distinct structures → five misses, the rest hits.
    let stats = engine.stats();
    assert_eq!(stats.misses, 5);
    assert_eq!(stats.hits, 35);
}

//! Engine-level tests for sampled observable estimation: the differential
//! scalar oracle (bit-for-bit agreement with a naive per-observable
//! diagonalize → simulate → count loop), the end-to-end statistical VQE
//! sweep against exact statevector expectations, plan memoization across
//! template clones, deadline handling, and panic containment.

use std::sync::Arc;
use std::time::Duration;

use quclear_engine::{group_shot_seed, Deadline, Engine, EngineError};
use quclear_pauli::{PauliOp, PauliRotation, PauliString, SignedPauli};
use quclear_sim::StateVector;
use quclear_workloads::{vqe_expectation_sweep, Benchmark};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The Table-3-style UCC workload: ansatz program plus a Hamiltonian-shaped
/// observable set, with a few members negated so sign handling is exercised.
fn ucc_workload() -> (Vec<PauliRotation>, Vec<SignedPauli>) {
    let sweep = vqe_expectation_sweep(&Benchmark::Ucc(2, 4), 1, 13);
    let mut observables = sweep.observables;
    for (i, observable) in observables.iter_mut().enumerate() {
        if i % 3 == 1 {
            *observable = SignedPauli::new(observable.pauli().clone(), true);
        }
    }
    (sweep.scenario.program_at(0), observables)
}

/// The naive scalar oracle: for one observable, find its group, re-simulate
/// the optimized circuit plus that group's diagonalizer, re-sample the
/// group's batch from the same derived seed, and count parities one shot at
/// a time with no plane kernels.
fn scalar_estimate(
    engine: &Engine,
    program: &[PauliRotation],
    observables: &[SignedPauli],
    observable: usize,
    shots: u64,
    seed: u64,
) -> f64 {
    let plan = engine.measurement_plan(program, observables).unwrap();
    let optimized = engine.compile(program).unwrap().optimized;
    let base = StateVector::from_circuit(&optimized);
    let (g, slot) = plan
        .groups()
        .iter()
        .enumerate()
        .find_map(|(g, group)| {
            group
                .members()
                .iter()
                .position(|&m| m == observable)
                .map(|slot| (g, slot))
        })
        .expect("every observable is covered by some group");
    let diagonalizer = plan.groups()[g].diagonalizer();
    let mut rotated = base.clone();
    rotated.apply_circuit(diagonalizer.circuit());
    let mut rng = StdRng::seed_from_u64(group_shot_seed(seed, g));
    let indices = rotated.sample_indices(shots as usize, &mut rng);
    let mask: u64 = (0..plan.num_qubits())
        .filter(|&q| diagonalizer.z_support(slot).get(q))
        .map(|q| 1u64 << q)
        .sum();
    let parity_sum: i64 = indices
        .iter()
        .map(|&shot| {
            if (shot & mask).count_ones().is_multiple_of(2) {
                1
            } else {
                -1
            }
        })
        .sum();
    diagonalizer.sign(slot) * parity_sum as f64 / indices.len() as f64
}

#[test]
fn estimate_matches_scalar_oracle_bit_for_bit() {
    let engine = Engine::new(8);
    let (program, observables) = ucc_workload();
    // 70 shots: deliberately not a multiple of the 64-bit plane width.
    for shots in [70u64, 64, 129] {
        let result = engine
            .estimate_observables(&program, &observables, shots, 9)
            .unwrap();
        assert_eq!(result.expectations.len(), observables.len());
        for i in 0..observables.len() {
            let oracle = scalar_estimate(&engine, &program, &observables, i, shots, 9);
            assert_eq!(
                result.expectations[i].to_bits(),
                oracle.to_bits(),
                "observable {i} at {shots} shots"
            );
        }
    }
}

#[test]
fn estimate_is_deterministic_in_seed() {
    let engine = Engine::new(8);
    let (program, observables) = ucc_workload();
    let a = engine
        .estimate_observables(&program, &observables, 100, 21)
        .unwrap();
    let b = engine
        .estimate_observables(&program, &observables, 100, 21)
        .unwrap();
    let c = engine
        .estimate_observables(&program, &observables, 100, 22)
        .unwrap();
    assert_eq!(a, b);
    assert_ne!(a.expectations, c.expectations);
}

#[test]
fn vqe_sweep_converges_to_statevector_within_sampling_bound() {
    let engine = Engine::new(8);
    let sweep = vqe_expectation_sweep(&Benchmark::Ucc(2, 4), 3, 5);
    let shots = 20_000u64;
    let bound = 6.0 / (shots as f64).sqrt();
    for point in 0..sweep.scenario.len() {
        let program = sweep.scenario.program_at(point);
        let result = engine
            .estimate_observables(&program, &sweep.observables, shots, 7)
            .unwrap();
        // The Table-3-style UCC workload must actually group observables.
        assert!(
            result.shot_budget_divisor > 1.0,
            "divisor {} at point {point}",
            result.shot_budget_divisor
        );
        let full = engine.compile(&program).unwrap().full_circuit();
        let psi = StateVector::from_circuit(&full);
        for (i, observable) in sweep.observables.iter().enumerate() {
            let exact = psi.expectation_signed(observable);
            assert!(
                (result.expectations[i] - exact).abs() < bound,
                "point {point} observable {i}: sampled {} vs exact {exact} (bound {bound})",
                result.expectations[i]
            );
        }
    }
}

#[test]
fn measurement_plan_is_memoized_and_shared_across_template_clones() {
    let engine = Engine::new(8);
    let (program, observables) = ucc_workload();
    let first = engine.measurement_plan(&program, &observables).unwrap();
    let second = engine.measurement_plan(&program, &observables).unwrap();
    assert!(
        Arc::ptr_eq(&first, &second),
        "repeat requests must share one plan"
    );
    // A fresh template lookup (cache hit → clone) shares the same memo.
    let template = engine.template_for(&program).unwrap();
    let via_template = template.measurement_plan(&observables);
    assert!(Arc::ptr_eq(&first, &via_template));
}

#[test]
fn estimate_respects_an_expired_deadline() {
    let engine = Engine::new(8);
    let (program, observables) = ucc_workload();
    // Warm the caches so only the deadline can fail the request.
    engine
        .estimate_observables(&program, &observables, 10, 1)
        .unwrap();
    let expired = Deadline::within(Duration::ZERO);
    std::thread::sleep(Duration::from_millis(2));
    let result = engine.estimate_observables_with_deadline(&program, &observables, 10, 1, expired);
    assert!(matches!(result, Err(EngineError::DeadlineExceeded)));
}

#[test]
fn zero_shots_and_oversized_registers_are_not_estimable() {
    let engine = Engine::new(8);
    let (program, observables) = ucc_workload();
    let zero = engine.estimate_observables(&program, &observables, 0, 1);
    assert!(matches!(zero, Err(EngineError::NotEstimable { .. })));

    // 27 qubits compiles fine but exceeds the dense simulator budget.
    let n = 27;
    let big_program = vec![PauliRotation::new(
        PauliString::single(n, 0, PauliOp::Z),
        0.4,
    )];
    let big_observables = vec![SignedPauli::positive(PauliString::single(n, 1, PauliOp::Z))];
    let big = engine.estimate_observables(&big_program, &big_observables, 10, 1);
    assert!(matches!(big, Err(EngineError::NotEstimable { .. })));
}

#[test]
fn panicking_diagonalization_is_contained_to_its_request() {
    let engine = Engine::new(8);
    let (program, observables) = ucc_workload();
    // Observables on the wrong register size panic inside the contained
    // plan-building region.
    let mismatched = vec![SignedPauli::positive(PauliString::single(7, 0, PauliOp::Z))];
    let bad = engine.estimate_observables(&program, &mismatched, 10, 1);
    assert!(matches!(bad, Err(EngineError::CompilationPanicked { .. })));
    // The engine (and the same template) keeps serving afterwards.
    let good = engine
        .estimate_observables(&program, &observables, 50, 1)
        .unwrap();
    assert_eq!(good.expectations.len(), observables.len());
}

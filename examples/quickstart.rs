//! Quickstart: optimize the paper's motivating example with QuCLEAR.
//!
//! The circuit implements `e^{-i·t1/2·ZZZZ} · e^{-i·t2/2·YYXX}` and measures
//! the observable `XXZZ` (Figure 2 of the paper). QuCLEAR extracts the
//! Clifford halves of both rotation blocks to the end of the circuit and
//! absorbs them into the observable, cutting the CNOT count from 12 to 4.
//!
//! Run with `cargo run --example quickstart`.

use quclear::core::{compile, QuClearConfig};
use quclear::prelude::*;
use quclear::sim::StateVector;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The input program: a sequence of exponentiated Pauli strings.
    let program = vec![
        PauliRotation::parse("ZZZZ", 0.37)?,
        PauliRotation::parse("YYXX", -0.91)?,
    ];
    let native_cnots: usize = program.iter().map(PauliRotation::native_cnot_cost).sum();

    // Compile with QuCLEAR: Clifford Extraction + local clean-up.
    let result = compile(&program, &QuClearConfig::default());
    println!("native CNOT count:    {native_cnots}");
    println!("QuCLEAR CNOT count:   {}", result.cnot_count());
    println!("entangling depth:     {}", result.entangling_depth());
    println!(
        "extracted Clifford:   {} gates (never executed)",
        result.extracted.len()
    );

    // Clifford Absorption: measure the rewritten observable instead.
    let observable: SignedPauli = "XXZZ".parse()?;
    let absorption = result.absorb_observables(std::slice::from_ref(&observable));
    println!(
        "observable {observable} becomes {}",
        absorption.transformed()[0]
    );

    // Check the answer against the dense simulator.
    let optimized_state = StateVector::from_circuit(&result.optimized);
    let measured = optimized_state.expectation(absorption.transformed()[0].pauli());
    let recovered = absorption.original_expectation(0, measured);

    let reference_state = StateVector::from_circuit(&result.full_circuit());
    let direct = reference_state.expectation_signed(&observable);
    println!("⟨XXZZ⟩ via absorption: {recovered:.6}");
    println!("⟨XXZZ⟩ directly:       {direct:.6}");
    assert!((recovered - direct).abs() < 1e-9);
    println!("results agree ✔");
    Ok(())
}

//! Hamiltonian simulation workload: compile one Trotter step of the LiH
//! Hamiltonian with QuCLEAR and every baseline, and compare the circuit
//! metrics (a one-row slice of the paper's Table III).
//!
//! Run with `cargo run --example hamiltonian_simulation --release`.

use std::time::Instant;

use quclear::baselines::Method;
use quclear::workloads::Molecule;

fn main() {
    let molecule = Molecule::LiH;
    let program = molecule.trotter_step(1.0);
    println!(
        "{}: {} Hamiltonian terms on {} qubits (one Trotter step)\n",
        molecule.name(),
        program.len(),
        molecule.num_qubits()
    );
    println!(
        "{:<10}  {:>6}  {:>6}  {:>6}  {:>10}",
        "method", "CNOT", "depth", "1q", "time (ms)"
    );
    for method in Method::ALL {
        let start = Instant::now();
        let circuit = method.compile(&program);
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        println!(
            "{:<10}  {:>6}  {:>6}  {:>6}  {:>10.2}",
            method.name(),
            circuit.cnot_count(),
            circuit.entangling_depth(),
            circuit.single_qubit_count(),
            elapsed
        );
    }
    println!(
        "\nNote: the QuCLEAR row counts only the circuit that runs on hardware; its\n\
         extracted Clifford tail is processed classically by Clifford Absorption."
    );
}

//! Serving demo: one warm template cache shared by many clients.
//!
//! Spawns a `quclear-serve` server in-process, connects clients from
//! several threads, and shows the compile-once/serve-many economics on the
//! wire: the first compile of a structure misses and extracts; every later
//! request — same structure, new angles, any client — is a cache hit, and
//! concurrent identical requests coalesce onto one in-flight extraction.
//!
//! Run with: `cargo run --release --example serve_demo`

use std::sync::Arc;

use quclear::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One engine behind the server: its sharded template cache and
    // single-flight table are what every client shares.
    let engine = Arc::new(Engine::new(256));
    let config = ServerConfig {
        // Overload protection: admission beyond this queue depth is shed
        // with a retryable `overloaded` error, and every admitted request
        // runs under a cooperative time budget answered as
        // `deadline_exceeded` when spent.
        max_queued_connections: 64,
        request_deadline: Some(std::time::Duration::from_secs(5)),
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", Arc::clone(&engine), config)?;
    let addr = server.local_addr();
    println!("serving on {addr}");

    // A UCCSD-flavoured ansatz structure, spelled as signed Pauli axes.
    let ansatz = ["ZZII", "YXII", "IZZI", "IYXI", "IIZZ", "IIYX"];

    // Four clients sweep the same structure with different angles — the
    // paper's VQE inner loop, but over TCP with a shared cache. Each client
    // carries a retry policy: a shed connection, a spent deadline or a dead
    // socket costs a seeded backoff and a reconnect, not the result.
    std::thread::scope(|scope| {
        for client_id in 0..4 {
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                client.set_retry_policy(Some(RetryPolicy::default()));
                for step in 0..5 {
                    let angles: Vec<f64> = (0..ansatz.len())
                        .map(|i| 0.1 * f64::from(client_id) + 0.07 * (step * i) as f64 + 0.01)
                        .collect();
                    let compiled = client.compile(&ansatz, &angles).expect("compile");
                    if step == 0 {
                        println!(
                            "client {client_id}: {} gates, {} CNOTs",
                            compiled.gate_count, compiled.cnot_count
                        );
                    }
                }
            });
        }
    });

    let mut client = Client::connect(addr)?;
    client.set_retry_policy(Some(RetryPolicy::default()));

    // A QASM front-door round trip through the same cache.
    let qasm = "OPENQASM 2.0;\nqreg q[3];\ncx q[0], q[1];\nrz(pi/3) q[1];\ncx q[0], q[1];\nu2(0.4, -0.9) q[2];\n";
    let compiled = client.compile_qasm(qasm)?;
    println!(
        "qasm ansatz: {} CNOTs after extraction",
        compiled.cnot_count
    );

    // A parameter sweep served in one request.
    let sets: Vec<Vec<f64>> = (0..10)
        .map(|i| {
            (0..ansatz.len())
                .map(|j| 0.02 * (i * j) as f64 + 0.3)
                .collect()
        })
        .collect();
    let sweep = client.sweep(&ansatz, &sets)?;
    println!(
        "sweep: {}/{} bindings succeeded",
        sweep.iter().filter(|r| r.is_ok()).count(),
        sweep.len()
    );

    // CA-Pre over the wire: observables rewritten through the extracted
    // Clifford, grouped for simultaneous measurement.
    let (rewritten, groups) = client.absorb(&ansatz, &["ZIII", "IZII", "IIZI", "IIIZ"])?;
    println!(
        "absorb: {} observables rewritten into {} commuting groups (first: {})",
        rewritten.len(),
        groups.len(),
        rewritten[0]
    );

    // The numbers that make the case: one extraction, everything else warm.
    let stats = client.stats()?;
    println!(
        "stats: {} lookups = {} misses + {} hits ({} coalesced), hit rate {:.1}%, \
         {} requests over {} connections",
        stats.hits + stats.misses,
        stats.misses,
        stats.hits,
        stats.coalesced_waits,
        100.0 * stats.hit_rate,
        stats.requests_served,
        stats.connections_accepted,
    );

    // Overload-protection counters: how often the server shed at admission
    // or ran a request out of budget, and what recovery cost this client.
    println!(
        "overload: {} connections shed, {} deadlines exceeded; this client \
         retried {} times across {} reconnects",
        stats.shed_connections,
        stats.deadline_exceeded,
        client.retries(),
        client.reconnects(),
    );

    // Per-kind latency digests ride along on the same stats response.
    for digest in &stats.request_latencies {
        println!(
            "latency[{}]: {} served, p50 {} ns, p99 {} ns",
            digest.kind, digest.count, digest.p50_ns, digest.p99_ns
        );
    }

    // The full telemetry picture: engine pipeline stages (fingerprint,
    // extract, bind, absorb) and serve-side instruments in one snapshot,
    // rendered as Prometheus text — point a scraper at this and the node
    // is on a dashboard.
    let snapshot = client.metrics()?;
    println!("\n--- metrics (Prometheus text exposition) ---");
    print!("{}", snapshot.to_prometheus_text());
    println!("--- end of scrape ---\n");

    drop(client);
    server.stop(); // graceful: drains the pool, joins every thread
    println!("server stopped cleanly");
    Ok(())
}

//! Ingesting QASM: paste a gate-level circuit, get optimized circuits and
//! expectation values.
//!
//! External workloads arrive as OpenQASM text, not Pauli-rotation programs.
//! `Engine::compile_qasm` parses the text, lifts it into a rotation program
//! (Rz/CX ladders collapse to multi-qubit rotations automatically), runs
//! Clifford Extraction through the template cache, and folds every trailing
//! Clifford into the measurement observables.
//!
//! Run with `cargo run --example qasm_ingest`.

use quclear::prelude::*;
use quclear::sim::StateVector;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A VQE-style ansatz as it would arrive from any external front-end:
    // two ZZ interaction gadgets, a transverse-field layer, and a basis
    // change. (`t` and parameter expressions like `pi/4` are accepted.)
    let qasm = "
        OPENQASM 2.0;
        include \"qelib1.inc\";
        qreg q[3];
        cx q[0], q[1]; rz(0.83) q[1]; cx q[0], q[1];
        cx q[1], q[2]; rz(-0.4) q[2]; cx q[1], q[2];
        rx(pi/4) q[0]; rx(pi/4) q[1]; rx(pi/4) q[2];
        h q[0]; t q[2];
    ";

    // Parse + lift + extract, served through the engine's template cache.
    let engine = Engine::new(64);
    let result = engine.compile_qasm(qasm)?;
    println!(
        "optimized circuit:  {} gates, {} CNOTs",
        result.optimized.len(),
        result.cnot_count()
    );
    println!(
        "absorbed Clifford:  {} gates (never executed)",
        result.extracted.len()
    );

    // Expectation values of the original observables, measured on the
    // *optimized* circuit only: CA-Pre rewrites the observables through the
    // absorbed Clifford.
    let observables: Vec<SignedPauli> = vec!["ZZI".parse()?, "IZZ".parse()?, "XXX".parse()?];
    let absorbed = result.absorb_observables(&observables);
    let state = StateVector::from_circuit(&result.optimized);
    for (i, observable) in observables.iter().enumerate() {
        let measured = state.expectation(absorbed.transformed()[i].pauli());
        let value = absorbed.original_expectation(i, measured);
        println!("⟨{observable}⟩ = {value:+.6}");
    }

    // Re-bind the same textual structure to new angles: the second
    // compilation is a cache hit (no re-extraction).
    let sweep = engine.bind_qasm(qasm, &[1.2, 0.7, 0.1, 0.1, 0.1, 0.5])?;
    println!(
        "rebound sweep point: {} CNOTs (cache hits: {})",
        sweep.cnot_count(),
        engine.stats().hits
    );
    Ok(())
}

//! VQE-style chemistry workload: compile a UCCSD ansatz with QuCLEAR and
//! measure Hamiltonian observables through Clifford Absorption.
//!
//! This mirrors the paper's UCC-(2,4) benchmark (the H₂ active space): the
//! ansatz is compiled once, every Pauli observable of the (synthetic)
//! Hamiltonian is rewritten through the extracted Clifford, and the energy is
//! evaluated on the *optimized* circuit only.
//!
//! Run with `cargo run --example vqe_chemistry`.

use quclear::baselines::synthesize_naive;
use quclear::core::{compile, QuClearConfig};
use quclear::prelude::*;
use quclear::sim::StateVector;
use quclear::workloads::{synthetic_molecular_hamiltonian, Uccsd};

fn main() {
    // UCC-(2,4): two electrons in four spin orbitals.
    let ansatz = Uccsd::new(2, 4);
    let program = ansatz.rotations();
    let n = ansatz.num_qubits();

    let naive = synthesize_naive(&program);
    let result = compile(&program, &QuClearConfig::default());
    println!(
        "UCC-(2,4): {} Pauli rotations on {} qubits",
        program.len(),
        n
    );
    println!(
        "  native circuit:   {} CNOTs, depth {}",
        naive.cnot_count(),
        naive.entangling_depth()
    );
    println!(
        "  QuCLEAR circuit:  {} CNOTs, depth {}",
        result.cnot_count(),
        result.entangling_depth()
    );

    // A synthetic molecular Hamiltonian on the same register provides the
    // measurement observables (CA-Pre rewrites them, CA-Post maps them back).
    let hamiltonian = synthetic_molecular_hamiltonian(n, 15, 42);
    let observables: Vec<SignedPauli> = hamiltonian
        .iter()
        .map(|(coeff, pauli)| SignedPauli::new(pauli.clone(), *coeff < 0.0))
        .collect();
    let absorption = result.absorb_observables(&observables);

    // Evaluate the energy two ways: directly on the unoptimized circuit and
    // through absorption on the optimized circuit.
    let reference_state = StateVector::from_circuit(&naive);
    let optimized_state = StateVector::from_circuit(&result.optimized);
    let mut direct_energy = 0.0;
    let mut absorbed_energy = 0.0;
    for (i, (coeff, pauli)) in hamiltonian.iter().enumerate() {
        direct_energy += coeff.abs() * reference_state.expectation_signed(&observables[i]);
        let measured = optimized_state.expectation(absorption.transformed()[i].pauli());
        absorbed_energy += coeff.abs() * absorption.original_expectation(i, measured);
        let _ = pauli;
    }
    println!("  energy (direct):    {direct_energy:.8}");
    println!("  energy (absorbed):  {absorbed_energy:.8}");
    assert!((direct_energy - absorbed_energy).abs() < 1e-8);
    println!("  energies agree ✔");
}

//! A VQE-style parameter sweep through the compilation engine.
//!
//! Variational workloads evaluate one ansatz *structure* at thousands of
//! parameter points. Recompiling from scratch pays the full Clifford
//! Extraction every time; the engine compiles the structure once, caches the
//! template, and rebinds angles in `O(gates)` — in parallel for batches.
//!
//! Run with `cargo run --release --example parameter_sweep`.

use std::time::Instant;

use quclear::core::{compile, QuClearConfig};
use quclear::prelude::*;
use quclear::workloads::{vqe_sweep, Benchmark};

fn main() {
    let benchmark = Benchmark::Ucc(2, 6);
    let points = 200;
    let sweep = vqe_sweep(&benchmark, points, 42);
    println!(
        "sweep: {} — {} rotations on {} qubits, {} parameter points\n",
        sweep.name,
        sweep.program.len(),
        benchmark.num_qubits(),
        sweep.len(),
    );

    // Baseline: recompile every parameter point from scratch.
    let config = QuClearConfig::default();
    let start = Instant::now();
    let mut naive_cnots = 0usize;
    for angles in &sweep.angle_sets {
        let program: Vec<PauliRotation> = sweep
            .program
            .iter()
            .zip(angles)
            .map(|(r, &a)| PauliRotation::new(r.pauli().clone(), a))
            .collect();
        naive_cnots = compile(&program, &config).cnot_count();
    }
    let naive_time = start.elapsed();
    println!("from-scratch recompiles: {naive_time:?}");

    // Engine: one extraction, then parallel cached rebinds.
    let engine = Engine::new(64);
    let start = Instant::now();
    let results = engine.sweep(&sweep.program, &sweep.angle_sets).unwrap();
    let engine_time = start.elapsed();
    println!("engine sweep:            {engine_time:?}");

    let ok = results.iter().filter(|r| r.is_ok()).count();
    let engine_cnots = results[0].as_ref().unwrap().cnot_count();
    let stats = engine.stats();
    println!(
        "\n{} / {} points compiled, {} CNOTs each (naive recompile agrees: {})",
        ok,
        results.len(),
        engine_cnots,
        engine_cnots == naive_cnots,
    );
    println!(
        "cache: {} hit(s), {} miss(es), {} entries — hit rate {:.1}%",
        stats.hits,
        stats.misses,
        stats.entries,
        stats.hit_rate() * 100.0,
    );
    println!(
        "speedup: {:.1}x",
        naive_time.as_secs_f64() / engine_time.as_secs_f64()
    );
}

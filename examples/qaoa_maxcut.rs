//! QAOA MaxCut workload: compile with QuCLEAR and recover the solution
//! distribution with the probability-measurement branch of Clifford
//! Absorption (Proposition 1 of the paper).
//!
//! Run with `cargo run --example qaoa_maxcut`.

use quclear::core::{compile, QuClearConfig};
use quclear::sim::StateVector;
use quclear::workloads::{maxcut_qaoa, qaoa_initial_layer, Graph};

fn main() {
    // A small random 3-regular-ish graph so that the distribution can be
    // simulated exactly and the best cut verified by brute force.
    let graph = Graph::random(6, 9, 11);
    let program = maxcut_qaoa(&graph, 1, 0.65, 1.1);
    let n = graph.num_vertices();

    let result = compile(&program, &QuClearConfig::default());
    println!(
        "QAOA MaxCut on {} nodes / {} edges: {} rotations → {} CNOTs (optimized)",
        n,
        graph.num_edges(),
        program.len(),
        result.cnot_count()
    );

    // Proposition 1: the extracted Clifford reduces to a measurement-basis
    // layer plus a classical CNOT network.
    let absorber = result
        .probability_absorber()
        .expect("QAOA circuits are probability-absorbable");
    println!(
        "extracted Clifford absorbed into a basis layer ({} rotated qubits) + affine bit map",
        absorber
            .basis_layer()
            .iter()
            .filter(|b| !b.is_identity())
            .count()
    );

    // Execute: |+⟩ preparation, optimized circuit, CA-Pre basis layer,
    // "measure", then CA-Post on the measured distribution.
    let mut circuit = qaoa_initial_layer(n);
    circuit.append(&result.optimized);
    circuit.append(&absorber.pre_circuit());
    let measured = StateVector::from_circuit(&circuit).probabilities();
    let recovered = absorber.post_process_probabilities(&measured);

    // Rank the recovered bitstrings by probability and report their cuts.
    let mut ranked: Vec<(usize, f64)> = recovered.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    let best_cut = graph.max_cut_brute_force();
    println!("optimal cut value (brute force): {best_cut}");
    println!("top measured assignments:");
    for (assignment, probability) in ranked.iter().take(5) {
        println!(
            "  {:0width$b}  p = {:.4}  cut = {}",
            assignment,
            probability,
            graph.cut_value(*assignment),
            width = n
        );
    }

    // Expected cut of the recovered distribution must match a direct
    // simulation of the full (unoptimized-equivalent) circuit.
    let mut full = qaoa_initial_layer(n);
    full.append(&result.full_circuit());
    let direct = StateVector::from_circuit(&full).probabilities();
    let expected_cut_recovered: f64 = recovered
        .iter()
        .enumerate()
        .map(|(a, p)| p * graph.cut_value(a) as f64)
        .sum();
    let expected_cut_direct: f64 = direct
        .iter()
        .enumerate()
        .map(|(a, p)| p * graph.cut_value(a) as f64)
        .sum();
    println!("expected cut (absorbed):  {expected_cut_recovered:.6}");
    println!("expected cut (direct):    {expected_cut_direct:.6}");
    assert!((expected_cut_recovered - expected_cut_direct).abs() < 1e-9);
    println!("distributions agree ✔");
}

//! Facade crate for the QuCLEAR reproduction.
//!
//! Re-exports the public API of every workspace crate so that examples,
//! integration tests and downstream users can depend on a single crate:
//!
//! ```
//! use quclear::prelude::*;
//!
//! let rotations = vec![PauliRotation::parse("ZZII", 0.3).unwrap()];
//! assert_eq!(rotations[0].weight(), 2);
//! ```

#![warn(missing_docs)]

pub use quclear_baselines as baselines;
pub use quclear_circuit as circuit;
pub use quclear_core as core;
pub use quclear_engine as engine;
pub use quclear_pauli as pauli;
pub use quclear_serve as serve;
pub use quclear_sim as sim;
pub use quclear_tableau as tableau;
pub use quclear_telemetry as telemetry;
pub use quclear_workloads as workloads;

/// Commonly used types, re-exported for convenient glob imports.
pub mod prelude {
    pub use quclear_circuit::qasm::{from_qasm, to_qasm};
    pub use quclear_circuit::{optimize, Circuit, CouplingMap, Gate};
    pub use quclear_core::{
        lift, lift_qasm, AbsorbedObservables, AbsorptionPlan, LiftedProgram, ShotBatch,
    };
    pub use quclear_engine::{BatchJob, CompiledTemplate, Deadline, Engine, ProgramFingerprint};
    pub use quclear_pauli::{PauliOp, PauliRotation, PauliString, SignedPauli};
    pub use quclear_serve::{Client, ClientError, RetryPolicy, Server, ServerConfig};
    pub use quclear_telemetry::{MetricsRegistry, MetricsSnapshot};
}
